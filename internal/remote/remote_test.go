package remote_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lotusx/internal/complete"
	"lotusx/internal/core"
	"lotusx/internal/corpus"
	"lotusx/internal/dataset"
	"lotusx/internal/doc"
	"lotusx/internal/faults"
	"lotusx/internal/httpmw"
	"lotusx/internal/metrics"
	"lotusx/internal/obs"
	"lotusx/internal/remote"
	"lotusx/internal/server"
	"lotusx/internal/twig"
)

// slices splits the canonical test document (XMark, the same build the
// corpus degrade tests use) into parts — the records each shard server
// serves.
func slices(t *testing.T, parts int) []*doc.Document {
	t.Helper()
	d, err := dataset.Build(dataset.XMark, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	docs, err := corpus.SplitDocument(d, parts)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != parts {
		t.Fatalf("split into %d parts, want %d", len(docs), parts)
	}
	return docs
}

// cluster is a router-side remote corpus over in-process shard servers.
type cluster struct {
	corpus *corpus.Corpus
	shards []*remote.Shard
	faults *faults.Registry
	met    *metrics.RemoteMetrics
}

// newCluster wires one remote.Shard per server group (group = the replica
// set of one logical shard) into a remote corpus.  Replica names are
// "r<shard>-<replica>" — the fault keys tests arm.  Breakers default off so
// policy tests see raw failures; hedging defaults off for determinism.
func newCluster(t *testing.T, groups [][]*httptest.Server, hedge time.Duration, tuning corpus.Tuning) *cluster {
	t.Helper()
	reg := faults.New()
	met := metrics.New().Remote("cluster")
	backends := make([]corpus.ShardBackend, len(groups))
	shards := make([]*remote.Shard, len(groups))
	for i, g := range groups {
		clients := make([]*remote.Client, len(g))
		for j, ts := range g {
			cl, err := remote.NewClient(remote.ClientConfig{
				BaseURL: ts.URL,
				Name:    fmt.Sprintf("r%d-%d", i, j),
				Faults:  reg,
				Metrics: met,
			})
			if err != nil {
				t.Fatal(err)
			}
			clients[j] = cl
		}
		sh, err := remote.NewShard(fmt.Sprintf("cluster-%02d", i), clients, remote.ShardOptions{
			HedgeDelay: hedge,
			Metrics:    met,
		})
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = sh
		backends[i] = sh
	}
	if tuning.BreakerThreshold == 0 {
		tuning.BreakerThreshold = -1
	}
	c, err := corpus.NewRemote("cluster", backends, corpus.Config{Tuning: tuning, Faults: reg})
	if err != nil {
		t.Fatal(err)
	}
	return &cluster{corpus: c, shards: shards, faults: reg, met: met}
}

// shardServer serves one document slice as a single-engine shard server.
func shardServer(t *testing.T, d *doc.Document) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(core.FromDocument(d)))
	t.Cleanup(ts.Close)
	return ts
}

func parse(t *testing.T, qs string) *twig.Query {
	t.Helper()
	q, err := twig.Parse(qs)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestRouterMatchesLocalCorpus is the core contract test: a remote corpus
// over N shard servers answers searches, completions and explains exactly
// like a local corpus over the same N-way split.
func TestRouterMatchesLocalCorpus(t *testing.T) {
	t.Parallel()
	docs := slices(t, 2)
	cl := newCluster(t, [][]*httptest.Server{
		{shardServer(t, docs[0])},
		{shardServer(t, docs[1])},
	}, -1, corpus.Tuning{})

	d, err := dataset.Build(dataset.XMark, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	local, err := corpus.FromDocument("local", d, 2, corpus.Config{})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	for _, qs := range []string{"//item/name", "//person[//city=\"berlin\"]", "//listitem"} {
		opts := core.SearchOptions{K: 10, Rewrite: true, SnippetMax: 200}
		want, err := local.SearchHits(ctx, parse(t, qs), opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cl.corpus.SearchHits(ctx, parse(t, qs), opts)
		if err != nil {
			t.Fatalf("%s: remote search: %v", qs, err)
		}
		if got.Exact != want.Exact || got.Total != want.Total || len(got.Hits) != len(want.Hits) {
			t.Fatalf("%s: got exact=%d total=%d hits=%d, want exact=%d total=%d hits=%d",
				qs, got.Exact, got.Total, len(got.Hits), want.Exact, want.Total, len(want.Hits))
		}
		if got.Partial {
			t.Fatalf("%s: healthy cluster answered partial", qs)
		}
		for i := range want.Hits {
			w, g := want.Hits[i], got.Hits[i]
			if g.Path != w.Path || g.Score != w.Score || g.Snippet != w.Snippet || g.Node != w.Node {
				t.Fatalf("%s: hit %d differs:\n got %+v\nwant %+v", qs, i, g, w)
			}
		}
	}

	// Completion merges by summed count, identically to the local merge.
	q := parse(t, "//item")
	anchor := q.OutputNode().ID
	want, err := local.CompleteTags(ctx, q, anchor, twig.Child, "", 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.corpus.CompleteTags(ctx, parse(t, "//item"), anchor, twig.Child, "", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("completion: got %d candidates, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("completion candidate %d: got %+v, want %+v", i, got[i], want[i])
		}
	}

	// Explain merges occurrence counts across shard servers.
	wOccs, err := local.ExplainTags(ctx, q, anchor, twig.Child, "name", 3)
	if err != nil {
		t.Fatal(err)
	}
	gOccs, err := cl.corpus.ExplainTags(ctx, parse(t, "//item"), anchor, twig.Child, "name", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(gOccs) != len(wOccs) {
		t.Fatalf("explain: got %d occurrences, want %d", len(gOccs), len(wOccs))
	}
	for i := range wOccs {
		if gOccs[i] != wOccs[i] {
			t.Fatalf("explain occurrence %d: got %+v, want %+v", i, gOccs[i], wOccs[i])
		}
	}
}

// TestDegradedPartialResults: a dead shard server degrades exactly like a
// dead local shard — partial:true, the shard named, survivors answering.
func TestDegradedPartialResults(t *testing.T) {
	t.Parallel()
	docs := slices(t, 2)
	cl := newCluster(t, [][]*httptest.Server{
		{shardServer(t, docs[0])},
		{shardServer(t, docs[1])},
	}, -1, corpus.Tuning{})

	// Kill shard 1's only replica for both the attempt and the transparent
	// retry.
	cl.faults.Enable(faults.Injection{
		Site: remote.FaultRPC,
		Keys: []string{"r1-0"},
		Err:  errors.New("injected connection failure"),
	})
	res, err := cl.corpus.SearchHits(context.Background(), parse(t, "//name"), core.SearchOptions{K: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || len(res.FailedShards) != 1 || res.FailedShards[0] != "cluster-01" {
		t.Fatalf("got partial=%v failed=%v, want partial over cluster-01", res.Partial, res.FailedShards)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits from the surviving shard")
	}
	for _, h := range res.Hits {
		if h.Shard != "cluster-00" {
			t.Fatalf("hit from %s, want only cluster-00 survivors", h.Shard)
		}
	}
	if got := cl.met.RPCErrors.Load(); got != 2 {
		t.Fatalf("RPCErrors = %d, want 2 (attempt + retry)", got)
	}
}

// TestFailoverToReplica: with R=2, a failing primary fails over to its
// replica inside the shard — the fan-out never notices.
func TestFailoverToReplica(t *testing.T) {
	t.Parallel()
	docs := slices(t, 1)
	ts := shardServer(t, docs[0])
	cl := newCluster(t, [][]*httptest.Server{{ts, ts}}, -1, corpus.Tuning{})

	cl.faults.Enable(faults.Injection{
		Site: remote.FaultRPC,
		Keys: []string{"r0-0"},
		Err:  errors.New("injected connection failure"),
	})
	res, err := cl.corpus.SearchHits(context.Background(), parse(t, "//item/name"), core.SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || len(res.Hits) == 0 {
		t.Fatalf("failover answer: partial=%v hits=%d, want full answer", res.Partial, len(res.Hits))
	}
	if got := cl.met.Failovers.Load(); got != 1 {
		t.Fatalf("Failovers = %d, want 1", got)
	}
	if got := cl.met.RPCErrors.Load(); got != 1 {
		t.Fatalf("RPCErrors = %d, want 1", got)
	}
}

// TestShortReadFailsOver: a response body truncated mid-payload (torn
// connection) is a replica failure like any other — decode fails, the
// replica set fails over.
func TestShortReadFailsOver(t *testing.T) {
	t.Parallel()
	docs := slices(t, 1)
	ts := shardServer(t, docs[0])
	cl := newCluster(t, [][]*httptest.Server{{ts, ts}}, -1, corpus.Tuning{})

	cl.faults.Enable(faults.Injection{
		Site:      remote.FaultBody,
		Keys:      []string{"r0-0"},
		ShortRead: 16,
	})
	res, err := cl.corpus.SearchHits(context.Background(), parse(t, "//item/name"), core.SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || len(res.Hits) == 0 {
		t.Fatalf("short-read failover: partial=%v hits=%d, want full answer", res.Partial, len(res.Hits))
	}
	if got := cl.met.Failovers.Load(); got != 1 {
		t.Fatalf("Failovers = %d, want 1", got)
	}
}

// TestHedgeCancelsLoser: a slow primary is hedged after the fixed delay,
// the replica wins, and the loser's in-flight request is cancelled.
func TestHedgeCancelsLoser(t *testing.T) {
	t.Parallel()
	docs := slices(t, 1)
	ts := shardServer(t, docs[0])
	cl := newCluster(t, [][]*httptest.Server{{ts, ts}}, 5*time.Millisecond, corpus.Tuning{})

	cancelled := make(chan struct{}, 1)
	cl.faults.Enable(faults.Injection{
		Site: remote.FaultRPC,
		Keys: []string{"r0-0"},
		Hook: func(ctx context.Context, key string) error {
			<-ctx.Done() // hold the primary until the race is decided
			cancelled <- struct{}{}
			return ctx.Err()
		},
	})
	res, err := cl.corpus.SearchHits(context.Background(), parse(t, "//item/name"), core.SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || len(res.Hits) == 0 {
		t.Fatalf("hedged answer: partial=%v hits=%d, want full answer", res.Partial, len(res.Hits))
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("losing replica was never cancelled")
	}
	if got := cl.met.HedgesFired.Load(); got != 1 {
		t.Fatalf("HedgesFired = %d, want 1", got)
	}
	if got := cl.met.HedgeWins.Load(); got != 1 {
		t.Fatalf("HedgeWins = %d, want 1 (the backup answered first)", got)
	}
}

// TestBreakerTripAndProbe: remote replica failures advance the shard's
// circuit breaker; while open the shard is skipped without touching the
// network, and a half-open probe heals it after the cooldown.
func TestBreakerTripAndProbe(t *testing.T) {
	t.Parallel()
	docs := slices(t, 1)
	cl := newCluster(t, [][]*httptest.Server{{shardServer(t, docs[0])}}, -1, corpus.Tuning{
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
	})
	cl.faults.Enable(faults.Injection{
		Site: remote.FaultRPC,
		Err:  errors.New("injected outage"),
	})

	ctx := context.Background()
	q := "//item/name"
	opts := core.SearchOptions{K: 5}
	for i := 0; i < 2; i++ {
		if _, err := cl.corpus.SearchHits(ctx, parse(t, q), opts); err == nil {
			t.Fatalf("search %d should fail during the outage", i)
		}
	}
	firedBefore := cl.faults.Fired(remote.FaultRPC)
	if firedBefore != 4 {
		t.Fatalf("fault fired %d times, want 4 (2 searches x attempt+retry)", firedBefore)
	}

	// Breaker open: the next search fails as quarantined without an RPC.
	_, err := cl.corpus.SearchHits(ctx, parse(t, q), opts)
	if !errors.Is(err, corpus.ErrShardQuarantined) {
		t.Fatalf("open-breaker search error = %v, want ErrShardQuarantined", err)
	}
	if fired := cl.faults.Fired(remote.FaultRPC); fired != firedBefore {
		t.Fatalf("quarantined search still hit the network (fired %d -> %d)", firedBefore, fired)
	}

	// After the cooldown a half-open probe goes through and heals the shard.
	cl.faults.Reset()
	time.Sleep(150 * time.Millisecond)
	res, err := cl.corpus.SearchHits(ctx, parse(t, q), opts)
	if err != nil {
		t.Fatalf("post-cooldown probe failed: %v", err)
	}
	if res.Partial || len(res.Hits) == 0 {
		t.Fatalf("healed answer: partial=%v hits=%d", res.Partial, len(res.Hits))
	}
}

// TestEnvelopeDecode: every v1 error code round-trips the wire into a
// typed *remote.Error, and undecodable bodies still yield one with the
// code inferred from the status.
func TestEnvelopeDecode(t *testing.T) {
	t.Parallel()
	cases := []struct {
		status int
		code   string
	}{
		{http.StatusBadRequest, httpmw.CodeBadQuery},
		{http.StatusNotFound, httpmw.CodeNotFound},
		{http.StatusMethodNotAllowed, httpmw.CodeMethodNotAllowed},
		{http.StatusRequestEntityTooLarge, httpmw.CodeTooLarge},
		{http.StatusGatewayTimeout, httpmw.CodeTimeout},
		{http.StatusTooManyRequests, httpmw.CodeOverloaded},
		{http.StatusGone, httpmw.CodeGone},
		{http.StatusInternalServerError, httpmw.CodeInternal},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.code, func(t *testing.T) {
			t.Parallel()
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				httpmw.WriteError(w, tc.status, tc.code, "injected "+tc.code)
			}))
			defer ts.Close()
			cl, err := remote.NewClient(remote.ClientConfig{BaseURL: ts.URL})
			if err != nil {
				t.Fatal(err)
			}
			_, err = cl.Search(context.Background(), remote.SearchRequest{Query: "//a", K: 1}, remote.TraceOff)
			var re *remote.Error
			if !errors.As(err, &re) {
				t.Fatalf("error %v (%T) is not a *remote.Error", err, err)
			}
			if re.Status != tc.status || re.Code != tc.code {
				t.Fatalf("decoded status=%d code=%q, want %d %q", re.Status, re.Code, tc.status, tc.code)
			}
			if !strings.Contains(re.Message, tc.code) {
				t.Fatalf("message %q lost the envelope text", re.Message)
			}
		})
	}

	t.Run("undecodable-body", func(t *testing.T) {
		t.Parallel()
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusBadGateway)
			fmt.Fprint(w, "<html>bad gateway</html>")
		}))
		defer ts.Close()
		cl, err := remote.NewClient(remote.ClientConfig{BaseURL: ts.URL})
		if err != nil {
			t.Fatal(err)
		}
		_, err = cl.Search(context.Background(), remote.SearchRequest{Query: "//a", K: 1}, remote.TraceOff)
		var re *remote.Error
		if !errors.As(err, &re) {
			t.Fatalf("error %v is not a *remote.Error", err)
		}
		if re.Status != http.StatusBadGateway || re.Code != httpmw.CodeUpstream {
			t.Fatalf("got status=%d code=%q, want 502 inferred as upstream_failed", re.Status, re.Code)
		}
	})

	t.Run("retry-after", func(t *testing.T) {
		t.Parallel()
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "7")
			httpmw.WriteError(w, http.StatusServiceUnavailable, httpmw.CodeOverloaded, "quarantined")
		}))
		defer ts.Close()
		cl, err := remote.NewClient(remote.ClientConfig{BaseURL: ts.URL})
		if err != nil {
			t.Fatal(err)
		}
		_, err = cl.Search(context.Background(), remote.SearchRequest{Query: "//a", K: 1}, remote.TraceOff)
		var re *remote.Error
		if !errors.As(err, &re) {
			t.Fatalf("error %v is not a *remote.Error", err)
		}
		if re.RetryAfter != 7*time.Second {
			t.Fatalf("RetryAfter = %v, want 7s", re.RetryAfter)
		}
	})
}

// routerServer assembles the full HTTP router: shard servers -> remote
// corpus -> a catalog server with the cluster route mounted.
func routerServer(t *testing.T, cl *cluster, cfg server.Config) *httptest.Server {
	t.Helper()
	catalog := core.NewCatalog()
	catalog.AddBackend("cluster", cl.corpus)
	cfg.ClusterStatus = func() any {
		sts := make([]remote.ShardStatus, len(cl.shards))
		for i, sh := range cl.shards {
			sts[i] = sh.Status()
		}
		return map[string]any{"dataset": "cluster", "shards": sts}
	}
	ts := httptest.NewServer(server.NewCatalogConfig(catalog, cfg))
	t.Cleanup(ts.Close)
	return ts
}

// TestRouterEndToEnd drives the whole chain over HTTP: request IDs forward
// to the shard hop, the shard's trace grafts into the router's trace, and
// GET /api/v1/cluster reports the topology.
func TestRouterEndToEnd(t *testing.T) {
	t.Parallel()
	docs := slices(t, 2)

	var mu sync.Mutex
	seenIDs := map[string]bool{}
	shardWithCapture := func(d *doc.Document) *httptest.Server {
		inner := server.New(core.FromDocument(d))
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			seenIDs[r.Header.Get("X-Request-Id")] = true
			mu.Unlock()
			inner.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		return ts
	}
	cl := newCluster(t, [][]*httptest.Server{
		{shardWithCapture(docs[0])},
		{shardWithCapture(docs[1])},
	}, -1, corpus.Tuning{})
	rt := routerServer(t, cl, server.Config{})

	body, _ := json.Marshal(map[string]any{"query": "//item/name", "k": 3})
	req, _ := http.NewRequest(http.MethodPost, rt.URL+"/api/v1/query?debug=trace", bytes.NewReader(body))
	req.Header.Set("X-Request-Id", "e2e-req-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	var qr struct {
		Answers []json.RawMessage `json:"answers"`
		Shards  int               `json:"shards"`
		Trace   *obs.Node         `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Answers) == 0 || qr.Shards != 2 {
		t.Fatalf("answers=%d shards=%d, want answers over 2 shards", len(qr.Answers), qr.Shards)
	}

	mu.Lock()
	forwarded := seenIDs["e2e-req-1"]
	mu.Unlock()
	if !forwarded {
		t.Fatalf("shard servers never saw the router's request ID; saw %v", seenIDs)
	}

	// The shard server's trace must appear grafted under the router's rpc
	// spans: rpc -> query -> parse/join/rank.
	if qr.Trace == nil {
		t.Fatal("no trace in response")
	}
	var names []string
	var walk func(n *obs.Node, depth int)
	walk = func(n *obs.Node, depth int) {
		names = append(names, n.Name)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(qr.Trace, 0)
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "rpc") || strings.Count(joined, "query") < 2 {
		t.Fatalf("trace %v lacks grafted remote spans (want rpc + nested remote query)", names)
	}

	// Completion over the full chain.
	cresp, err := http.Get(rt.URL + "/api/v1/complete?kind=tag&path=//item&axis=child&prefix=na&k=5")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	var comp struct {
		Candidates []complete.Candidate `json:"candidates"`
	}
	if err := json.NewDecoder(cresp.Body).Decode(&comp); err != nil {
		t.Fatal(err)
	}
	if len(comp.Candidates) == 0 || comp.Candidates[0].Text != "name" {
		t.Fatalf("completion candidates = %+v, want name first", comp.Candidates)
	}

	// Topology endpoint.
	sresp, err := http.Get(rt.URL + "/api/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st struct {
		Dataset string               `json:"dataset"`
		Shards  []remote.ShardStatus `json:"shards"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Dataset != "cluster" || len(st.Shards) != 2 || st.Shards[0].Name != "cluster-00" {
		t.Fatalf("cluster status = %+v", st)
	}
}

// TestRouterRetryAfterOnQuarantine: once the only shard's breaker opens,
// the router answers 503 with a Retry-After derived from the breaker
// cooldown — instead of burning RPCs on a shard it knows is down.
func TestRouterRetryAfterOnQuarantine(t *testing.T) {
	t.Parallel()
	docs := slices(t, 1)
	cl := newCluster(t, [][]*httptest.Server{{shardServer(t, docs[0])}}, -1, corpus.Tuning{
		BreakerThreshold: 1,
		BreakerCooldown:  30 * time.Second,
	})
	cl.faults.Enable(faults.Injection{Site: remote.FaultRPC, Err: errors.New("injected outage")})
	rt := routerServer(t, cl, server.Config{})

	query := func() *http.Response {
		body, _ := json.Marshal(map[string]any{"query": "//item", "k": 3})
		resp, err := http.Post(rt.URL+"/api/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	r1 := query()
	r1.Body.Close()
	if r1.StatusCode != http.StatusBadGateway {
		t.Fatalf("outage search status = %d, want 502 (all shards failed)", r1.StatusCode)
	}

	r2 := query()
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("quarantined search status = %d, want 503", r2.StatusCode)
	}
	if ra := r2.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want the breaker cooldown remaining", ra)
	}
	var env httpmw.ErrorBody
	if err := json.NewDecoder(r2.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != httpmw.CodeOverloaded {
		t.Fatalf("quarantine code = %q, want %q", env.Error.Code, httpmw.CodeOverloaded)
	}

	// Completions consult the same breaker: with every shard quarantined
	// the router answers 503 + Retry-After instead of dialing a shard it
	// knows is down and surfacing a raw transport error as a 500.
	rpcs := cl.met.RPCErrors.Load()
	c1, err := http.Get(rt.URL + "/api/v1/complete?kind=tag&path=//item&axis=child&prefix=na&k=5")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Body.Close()
	if c1.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("quarantined completion status = %d, want 503", c1.StatusCode)
	}
	if ra := c1.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("completion Retry-After = %q, want the breaker cooldown remaining", ra)
	}
	var cenv httpmw.ErrorBody
	if err := json.NewDecoder(c1.Body).Decode(&cenv); err != nil {
		t.Fatal(err)
	}
	if cenv.Error.Code != httpmw.CodeOverloaded {
		t.Fatalf("completion quarantine code = %q, want %q", cenv.Error.Code, httpmw.CodeOverloaded)
	}
	if got := cl.met.RPCErrors.Load(); got != rpcs {
		t.Fatalf("quarantined completion dialed the shard: RPCErrors %d -> %d", rpcs, got)
	}
}

// TestCompletionDegradesAroundQuarantine: when only some shards are
// quarantined, completions and explains merge the survivors (counts
// undercount the missing shard) instead of failing — the completion-side
// analog of a partial search.
func TestCompletionDegradesAroundQuarantine(t *testing.T) {
	t.Parallel()
	docs := slices(t, 2)
	cl := newCluster(t, [][]*httptest.Server{
		{shardServer(t, docs[0])},
		{shardServer(t, docs[1])},
	}, -1, corpus.Tuning{
		BreakerThreshold: 1,
		BreakerCooldown:  30 * time.Second,
	})
	// Only shard cluster-01's replica fails; cluster-00 stays healthy.
	cl.faults.Enable(faults.Injection{Site: remote.FaultRPC, Keys: []string{"r1-0"}, Err: errors.New("injected outage")})

	ctx := context.Background()
	res, err := cl.corpus.SearchHits(ctx, parse(t, "//item"), core.SearchOptions{K: 3})
	if err != nil {
		t.Fatalf("degraded search: %v", err)
	}
	if !res.Partial {
		t.Fatal("search over a failing shard should be partial")
	}

	// The breaker for cluster-01 is now open; completion skips it and
	// merges the survivor without spending an RPC on the dead shard.
	rpcs := cl.met.RPCErrors.Load()
	q := parse(t, "//item")
	anchor := q.OutputNode().ID
	cands, err := cl.corpus.CompleteTags(ctx, q, anchor, twig.Child, "", 8)
	if err != nil {
		t.Fatalf("completion around quarantined shard: %v", err)
	}
	if len(cands) == 0 {
		t.Fatal("surviving shard should still propose candidates")
	}
	occs, err := cl.corpus.ExplainTags(ctx, parse(t, "//item"), anchor, twig.Child, "name", 3)
	if err != nil {
		t.Fatalf("explain around quarantined shard: %v", err)
	}
	if len(occs) == 0 {
		t.Fatal("surviving shard should still report occurrences")
	}
	if got := cl.met.RPCErrors.Load(); got != rpcs {
		t.Fatalf("completion dialed the quarantined shard: RPCErrors %d -> %d", rpcs, got)
	}
}

// TestDeadlineBoundsRemoteShard: a short request deadline caps the per-hop
// budget even when -shard-timeout is huge, so a hung shard server cannot
// hold a request past its deadline.
func TestDeadlineBoundsRemoteShard(t *testing.T) {
	t.Parallel()
	docs := slices(t, 1)
	cl := newCluster(t, [][]*httptest.Server{{shardServer(t, docs[0])}}, -1, corpus.Tuning{
		ShardTimeout: 10 * time.Second,
	})
	cl.faults.Enable(faults.Injection{Site: remote.FaultRPC, Latency: 5 * time.Second})

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.corpus.SearchHits(ctx, parse(t, "//item"), core.SearchOptions{K: 3})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("search against a hung shard should fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want deadline exceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("request held for %v; the derived per-hop budget should have cut it near 150ms", elapsed)
	}
}

// TestRemoteCorpusIsReadOnly: the remote corpus rejects mutation — data
// lives on the shard servers.
func TestRemoteCorpusIsReadOnly(t *testing.T) {
	t.Parallel()
	docs := slices(t, 1)
	cl := newCluster(t, [][]*httptest.Server{{shardServer(t, docs[0])}}, -1, corpus.Tuning{})
	if !cl.corpus.Remote() {
		t.Fatal("remote corpus does not report Remote()")
	}
	d, err := dataset.Build(dataset.DBLP, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.corpus.AddSplit("extra", d, 1); err == nil {
		t.Fatal("AddSplit on a remote corpus must fail")
	}
}

// TestShardInfo: the stats RPC aggregates into the corpus Info view.
func TestShardInfo(t *testing.T) {
	t.Parallel()
	docs := slices(t, 2)
	cl := newCluster(t, [][]*httptest.Server{
		{shardServer(t, docs[0])},
		{shardServer(t, docs[1])},
	}, -1, corpus.Tuning{})
	info := cl.corpus.Info()
	if info.Kind != "remote-corpus" || info.Shards != 2 {
		t.Fatalf("info = %+v, want remote-corpus over 2 shards", info)
	}
	if info.Nodes == 0 {
		t.Fatalf("info = %+v, want summed node counts from the shard servers", info)
	}
}
