package remote

import (
	"sync"

	"lotusx/internal/metrics"
)

// RetryBudget caps a router's secondary attempts — hedges and error
// failovers — as a fraction of its primary traffic.  Every primary attempt
// deposits ratio tokens (capped at a small burst), every secondary attempt
// withdraws one; when the bucket is empty the secondary is skipped and the
// caller settles for its primary outcome.  The point is brownout
// containment: when a whole cluster slows down, hedge timers fire on every
// search and error failovers cascade, and without a budget the retry volume
// multiplies the overload that caused it.  A budget of 0.2 means secondary
// traffic can never exceed ~20% of primary traffic, no matter how bad the
// tail gets.
//
// One budget is shared across all shards of a router (hot shards borrow
// headroom earned by healthy ones, and the cluster-wide amplification bound
// is what matters).  A nil *RetryBudget disables the cap: Allow always
// grants.  All methods are safe for concurrent use.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	ratio  float64
	met    *metrics.AdmissionMetrics
}

// retryBudgetBurst is the token cap: how many secondaries may fire back to
// back after a quiet period before the earn rate applies.
const retryBudgetBurst = 10

// NewRetryBudget builds a budget earning ratio tokens per primary attempt.
// ratio <= 0 returns nil (no cap).  met, when non-nil, receives the
// granted/denied counters.
func NewRetryBudget(ratio float64, met *metrics.AdmissionMetrics) *RetryBudget {
	if ratio <= 0 {
		return nil
	}
	return &RetryBudget{tokens: retryBudgetBurst, max: retryBudgetBurst, ratio: ratio, met: met}
}

// RecordPrimary deposits one primary attempt's earnings.
func (b *RetryBudget) RecordPrimary() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.max {
		b.tokens = b.max
	}
	b.mu.Unlock()
}

// Allow withdraws one token for a secondary attempt, reporting whether the
// budget covers it.  A denied attempt is simply not launched — the primary's
// outcome stands.
func (b *RetryBudget) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	ok := b.tokens >= 1
	if ok {
		b.tokens--
	}
	b.mu.Unlock()
	if b.met != nil {
		if ok {
			b.met.RetryBudgetGranted.Add(1)
		} else {
			b.met.RetryBudgetDenied.Add(1)
		}
	}
	return ok
}
