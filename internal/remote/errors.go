package remote

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"lotusx/internal/httpmw"
)

// Error is a shard server's v1 error envelope decoded back into a typed
// value: the transport succeeded but the remote answered with an error
// status.  It deliberately does not wrap context errors — a remote 5xx is a
// verdict on the shard, so the corpus breaker must advance on it, whereas a
// local context casualty (which arrives as the http client's own error, not
// as an Error) may only mean this router is giving up.
type Error struct {
	// Status is the HTTP status the replica answered with.
	Status int
	// Code is the v1 error code (httpmw.Code*); when the body was not a
	// decodable envelope it is inferred from the status.
	Code string
	// Message is the envelope's human-readable message.
	Message string
	// Replica names the replica that answered, for logs and joined errors.
	Replica string
	// RetryAfter is the parsed Retry-After header when the replica sent one
	// (quarantined corpus, shed load); 0 otherwise.
	RetryAfter time.Duration
}

func (e *Error) Error() string {
	return fmt.Sprintf("remote %s: %d %s: %s", e.Replica, e.Status, e.Code, e.Message)
}

// decodeError turns a non-200 response into an *Error, reading at most a
// small bounded prefix of the body.  Envelope decoding is best-effort: a
// proxy's HTML error page still yields a typed Error with the code inferred
// from the status.
func decodeError(resp *http.Response, body io.Reader, replica string) error {
	data, _ := io.ReadAll(io.LimitReader(body, 8<<10))
	e := &Error{Status: resp.StatusCode, Replica: replica}
	var env httpmw.ErrorBody
	if json.Unmarshal(data, &env) == nil && env.Error.Code != "" {
		e.Code, e.Message = env.Error.Code, env.Error.Message
	} else {
		e.Code = httpmw.CodeForStatus(resp.StatusCode)
		e.Message = strings.TrimSpace(string(data))
		if e.Message == "" {
			e.Message = http.StatusText(resp.StatusCode)
		}
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}
