package remote_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"net/http/httptest"

	"lotusx/internal/corpus"
	"lotusx/internal/faults"
	"lotusx/internal/metrics"
	"lotusx/internal/obs"
	"lotusx/internal/remote"
	"lotusx/internal/server"
	"lotusx/internal/slo"
)

// federationClients builds one metrics-poll client per shard server.
func federationClients(t *testing.T, servers ...*httptest.Server) []*remote.Client {
	t.Helper()
	clients := make([]*remote.Client, len(servers))
	for i, ts := range servers {
		cl, err := remote.NewClient(remote.ClientConfig{
			BaseURL: ts.URL,
			Name:    fmt.Sprintf("shard-%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = cl
	}
	return clients
}

// TestMetricsFederation: the federator pulls each shard server's snapshot
// into the cluster rollup; a dead server is marked down but its last-known
// snapshot survives, and the merged view renders as lotusx_cluster_*.
func TestMetricsFederation(t *testing.T) {
	t.Parallel()
	docs := slices(t, 2)
	ts0, ts1 := shardServer(t, docs[0]), shardServer(t, docs[1])

	// Traffic on shard 0 so its snapshot carries non-zero request counts.
	body, _ := json.Marshal(map[string]any{"query": "//item/name", "k": 3})
	resp, err := http.Post(ts0.URL+"/api/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	reg := metrics.New()
	fed := remote.NewFederator(remote.FederatorConfig{
		Clients: federationClients(t, ts0, ts1),
		Cluster: reg.Cluster(),
	})
	fed.PollOnce(context.Background())

	snap := reg.Cluster().Snapshot()
	if len(snap.Servers) != 2 {
		t.Fatalf("federated %d servers, want 2", len(snap.Servers))
	}
	s0 := snap.Servers["shard-0"]
	if !s0.Up || s0.Metrics == nil || s0.AgeSeconds < 0 {
		t.Fatalf("shard-0 = %+v, want up with a snapshot", s0)
	}
	if s0.Metrics.Endpoints["query"].Requests == 0 {
		t.Fatal("shard-0 snapshot lost the query traffic")
	}

	// Kill shard 1: next poll marks it down, last snapshot kept.
	ts1.Close()
	fed.PollOnce(context.Background())
	snap = reg.Cluster().Snapshot()
	s1 := snap.Servers["shard-1"]
	if s1.Up || s1.Error == "" {
		t.Fatalf("shard-1 = %+v, want down with an error", s1)
	}
	if s1.Metrics == nil {
		t.Fatal("shard-1's last-known snapshot was discarded on failure")
	}

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`lotusx_cluster_server_up{server="shard-0"} 1`,
		`lotusx_cluster_server_up{server="shard-1"} 0`,
		`lotusx_cluster_server_requests_total{server="shard-0"}`,
		"# TYPE lotusx_cluster_server_error_ratio gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster exposition missing %q", want)
		}
	}
}

// TestFederatorLoop: Start polls immediately and keeps polling; Stop is
// idempotent and safe on a never-started federator.
func TestFederatorLoop(t *testing.T) {
	t.Parallel()
	docs := slices(t, 1)
	ts := shardServer(t, docs[0])
	reg := metrics.New()
	fed := remote.NewFederator(remote.FederatorConfig{
		Clients:  federationClients(t, ts),
		Cluster:  reg.Cluster(),
		Interval: 5 * time.Millisecond,
	})
	fed.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := reg.Cluster().Snapshot().Servers["shard-0"]; s.Up {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("federator never polled")
		}
		time.Sleep(time.Millisecond)
	}
	fed.Stop()
	fed.Stop() // idempotent

	empty := remote.NewFederator(remote.FederatorConfig{})
	empty.Start()
	empty.Stop() // no-op start must not wedge Stop
}

// TestRouterClusterMetricsEndpoint: the router serves the merged rollup at
// GET /api/v1/cluster/metrics.
func TestRouterClusterMetricsEndpoint(t *testing.T) {
	t.Parallel()
	docs := slices(t, 1)
	ts := shardServer(t, docs[0])
	cl := newCluster(t, [][]*httptest.Server{{ts}}, -1, corpus.Tuning{})
	reg := metrics.New()
	fed := remote.NewFederator(remote.FederatorConfig{
		Clients: federationClients(t, ts),
		Cluster: reg.Cluster(),
	})
	fed.PollOnce(context.Background())
	rt := routerServer(t, cl, server.Config{Metrics: reg})

	resp, err := http.Get(rt.URL + "/api/v1/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster metrics status = %d", resp.StatusCode)
	}
	var got metrics.ClusterSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if s := got.Servers["shard-0"]; !s.Up || s.Metrics == nil {
		t.Fatalf("rollup = %+v, want shard-0 up with metrics", got.Servers)
	}
}

// walkNames flattens a rendered span tree into its span names.
func walkNames(n *obs.Node) []string {
	if n == nil {
		return nil
	}
	names := []string{n.Name}
	for _, c := range n.Children {
		names = append(names, walkNames(c)...)
	}
	return names
}

// TestTailSampledTraceRetrieval is the acceptance path: a degraded request
// served WITHOUT ?debug=trace is retrievable minutes later from
// GET /api/v1/traces/{requestId}, grafted shard-server spans included.
func TestTailSampledTraceRetrieval(t *testing.T) {
	t.Parallel()
	docs := slices(t, 2)
	cl := newCluster(t, [][]*httptest.Server{
		{shardServer(t, docs[0])},
		{shardServer(t, docs[1])},
	}, -1, corpus.Tuning{})
	rt := routerServer(t, cl, server.Config{})

	// Shard 1 down: the answer degrades to partial — an interesting trace.
	cl.faults.Enable(faults.Injection{
		Site: remote.FaultRPC,
		Keys: []string{"r1-0"},
		Err:  errors.New("injected connection failure"),
	})

	body, _ := json.Marshal(map[string]any{"query": "//item/name", "k": 3})
	req, _ := http.NewRequest(http.MethodPost, rt.URL+"/api/v1/query", bytes.NewReader(body))
	req.Header.Set("X-Request-Id", "tail-req-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	var qr struct {
		Partial bool      `json:"partial"`
		Trace   *obs.Node `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Partial {
		t.Fatal("request did not degrade")
	}
	if qr.Trace != nil {
		t.Fatal("untraced request returned a trace in the response")
	}

	// The list names it with its classification...
	lresp, err := http.Get(rt.URL + "/api/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list struct {
		Traces   []obs.TraceRecord `json:"traces"`
		Retained int               `json:"retained"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	var summary *obs.TraceRecord
	for i := range list.Traces {
		if list.Traces[i].RequestID == "tail-req-1" {
			summary = &list.Traces[i]
		}
	}
	if summary == nil {
		t.Fatalf("trace list %+v lacks tail-req-1", list.Traces)
	}
	if !summary.Partial || summary.Endpoint != "query" || summary.Trace != nil {
		t.Fatalf("summary = %+v, want partial query without tree", summary)
	}

	// ...and the fetch returns the full tree with grafted shard spans.
	gresp, err := http.Get(rt.URL + "/api/v1/traces/tail-req-1")
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch status = %d", gresp.StatusCode)
	}
	var rec obs.TraceRecord
	if err := json.NewDecoder(gresp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.Trace == nil {
		t.Fatal("retained record has no span tree")
	}
	joined := strings.Join(walkNames(rec.Trace), " ")
	if !strings.Contains(joined, "rpc") || strings.Count(joined, "query") < 2 {
		t.Fatalf("trace %q lacks grafted remote spans", joined)
	}

	// Stage filtering reaches into the grafted subtree.
	sresp, err := http.Get(rt.URL + "/api/v1/traces?stage=join")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	list.Traces = nil
	if err := json.NewDecoder(sresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) == 0 {
		t.Fatal("stage=join filter missed the grafted shard evaluation spans")
	}

	// An unknown ID is a clean 404.
	nresp, err := http.Get(rt.URL + "/api/v1/traces/no-such-request")
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace status = %d, want 404", nresp.StatusCode)
	}
}

// TestHedgedTraceRetained: a hedged request is interesting on its own —
// retained without error, partial or slowness.
func TestHedgedTraceRetained(t *testing.T) {
	t.Parallel()
	docs := slices(t, 1)
	ts := shardServer(t, docs[0])
	cl := newCluster(t, [][]*httptest.Server{{ts, ts}}, 5*time.Millisecond, corpus.Tuning{})
	rt := routerServer(t, cl, server.Config{})

	cl.faults.Enable(faults.Injection{
		Site: remote.FaultRPC,
		Keys: []string{"r0-0"},
		Hook: func(ctx context.Context, key string) error {
			<-ctx.Done() // hold the primary until the hedge wins
			return ctx.Err()
		},
	})
	body, _ := json.Marshal(map[string]any{"query": "//item/name", "k": 3})
	req, _ := http.NewRequest(http.MethodPost, rt.URL+"/api/v1/query", bytes.NewReader(body))
	req.Header.Set("X-Request-Id", "hedge-req-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}

	gresp, err := http.Get(rt.URL + "/api/v1/traces/hedge-req-1")
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("hedged trace fetch status = %d", gresp.StatusCode)
	}
	var rec obs.TraceRecord
	if err := json.NewDecoder(gresp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if !rec.Hedged {
		t.Fatalf("record = %+v, want Hedged", rec)
	}
}

// TestSLOBurnUnderShardFailure: with every shard down and failfast policy,
// query 5xxes burn the availability budget — the lotusx_slo_* families and
// the burning signal must move.
func TestSLOBurnUnderShardFailure(t *testing.T) {
	t.Parallel()
	docs := slices(t, 1)
	ts := shardServer(t, docs[0])
	cl := newCluster(t, [][]*httptest.Server{{ts}}, -1,
		corpus.Tuning{Policy: corpus.PolicyFailFast})

	tracker, err := slo.New(slo.Config{
		Objectives: []slo.Objective{{Name: "availability", Target: 0.999}},
		MinEvents:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt := routerServer(t, cl, server.Config{SLO: tracker})

	cl.faults.Enable(faults.Injection{
		Site: remote.FaultRPC,
		Keys: []string{"r0-0"},
		Err:  errors.New("injected outage"),
	})
	body, _ := json.Marshal(map[string]any{"query": "//item/name", "k": 3})
	for i := 0; i < 10; i++ {
		resp, err := http.Post(rt.URL+"/api/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode < 500 {
			t.Fatalf("query %d status = %d, want 5xx under failfast outage", i, resp.StatusCode)
		}
	}

	st := tracker.Snapshot().Objectives[0]
	if st.BadTotal < 10 || st.FastBurnRate < slo.DefaultFastBurnAlert || !st.Burning {
		t.Fatalf("objective = %+v, want burning after 10 failures", st)
	}
	if tracker.Burning() == "" {
		t.Fatal("Burning() empty during an outage")
	}

	// The signal rides the router's Prometheus exposition and JSON metrics.
	mresp, err := http.Get(rt.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	out := buf.String()
	for _, want := range []string{
		`lotusx_slo_burning{objective="availability"} 1`,
		"# TYPE lotusx_slo_burn_rate gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("router exposition missing %q", want)
		}
	}

	jresp, err := http.Get(rt.URL + "/api/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var snap struct {
		SLO *slo.Snapshot `json:"slo"`
	}
	if err := json.NewDecoder(jresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.SLO == nil || len(snap.SLO.Objectives) != 1 || !snap.SLO.Objectives[0].Burning {
		t.Fatalf("/api/v1/metrics slo = %+v, want burning objective", snap.SLO)
	}
}
