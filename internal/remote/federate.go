package remote

import (
	"context"
	"sync"
	"time"

	"lotusx/internal/metrics"
)

// Metrics federation: the router periodically pulls each shard server's
// /api/v1/metrics snapshot over the same v1 client the data path uses and
// folds the results into the registry's ClusterMetrics, which the router
// serves back merged at /api/v1/cluster/metrics and as lotusx_cluster_*
// Prometheus families.  Pull keeps shard servers passive (they already
// expose the snapshot; no push agent, no new wire surface) and the poll
// budget keeps a hung shard from wedging the loop.

// Federation timing defaults.
const (
	// DefaultFederateInterval is the poll period; each cycle costs one
	// GET /api/v1/metrics per distinct shard server.
	DefaultFederateInterval = 10 * time.Second
	// DefaultFederateTimeout budgets one snapshot pull.
	DefaultFederateTimeout = 2 * time.Second
)

// FederatorConfig configures the metrics federation loop.
type FederatorConfig struct {
	// Clients are the shard-server endpoints to poll, deduplicated by
	// Client.Name — replica lists across shards typically share servers.
	Clients []*Client
	// Cluster receives the polled snapshots; required.
	Cluster *metrics.ClusterMetrics
	// Interval is the poll period; 0 means DefaultFederateInterval.
	Interval time.Duration
	// Timeout budgets each per-server pull; 0 means DefaultFederateTimeout.
	Timeout time.Duration
}

// Federator polls shard servers' metrics snapshots on a fixed interval.
type Federator struct {
	clients  []*Client
	cluster  *metrics.ClusterMetrics
	interval time.Duration
	timeout  time.Duration

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewFederator builds a federation loop, deduplicating clients by name.
// It does not start polling; call Start.
func NewFederator(cfg FederatorConfig) *Federator {
	seen := make(map[string]bool, len(cfg.Clients))
	var clients []*Client
	for _, c := range cfg.Clients {
		if c == nil || seen[c.Name()] {
			continue
		}
		seen[c.Name()] = true
		clients = append(clients, c)
	}
	interval := cfg.Interval
	if interval <= 0 {
		interval = DefaultFederateInterval
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = DefaultFederateTimeout
	}
	return &Federator{
		clients:  clients,
		cluster:  cfg.Cluster,
		interval: interval,
		timeout:  timeout,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// PollOnce pulls every server's snapshot concurrently and records the
// results: a success updates the server's snapshot, a failure marks it
// down (its last-known snapshot is kept for the merged view).
func (f *Federator) PollOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, c := range f.clients {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, f.timeout)
			defer cancel()
			snap, err := c.MetricsSnapshot(pctx)
			if err != nil {
				f.cluster.MarkDown(c.Name(), err)
				return
			}
			f.cluster.Update(c.Name(), snap)
		}(c)
	}
	wg.Wait()
}

// Start launches the poll loop: one immediate poll, then one per interval
// until Stop.  Starting a federator with no clients or no cluster sink is
// a no-op.
func (f *Federator) Start() {
	if len(f.clients) == 0 || f.cluster == nil {
		return
	}
	go func() {
		defer close(f.done)
		f.PollOnce(context.Background())
		t := time.NewTicker(f.interval)
		defer t.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-t.C:
				f.PollOnce(context.Background())
			}
		}
	}()
}

// Stop halts the poll loop and waits for it to exit.  Safe to call more
// than once, and safe on a federator that never started (Start's no-op
// case never closes done, so Stop returns immediately then).
func (f *Federator) Stop() {
	f.once.Do(func() { close(f.stop) })
	if len(f.clients) == 0 || f.cluster == nil {
		return
	}
	<-f.done
}
