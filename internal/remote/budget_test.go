package remote_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"lotusx/internal/core"
	"lotusx/internal/faults"
	"lotusx/internal/metrics"
	"lotusx/internal/remote"
)

func TestRetryBudgetNilDisablesCap(t *testing.T) {
	if b := remote.NewRetryBudget(0, nil); b != nil {
		t.Fatal("ratio 0 built a budget")
	}
	if b := remote.NewRetryBudget(-1, nil); b != nil {
		t.Fatal("negative ratio built a budget")
	}
	var b *remote.RetryBudget
	b.RecordPrimary() // nil-safe
	for i := 0; i < 100; i++ {
		if !b.Allow() {
			t.Fatal("nil budget denied a secondary")
		}
	}
}

func TestRetryBudgetBurstThenEarnRate(t *testing.T) {
	am := metrics.New().Admission()
	b := remote.NewRetryBudget(0.2, am)

	// A fresh budget carries the burst: 10 secondaries, then denial.
	for i := 0; i < 10; i++ {
		if !b.Allow() {
			t.Fatalf("burst secondary %d denied", i)
		}
	}
	if b.Allow() {
		t.Fatal("secondary granted past the burst with no primaries")
	}

	// Five primaries at ratio 0.2 earn one secondary — no more.
	for i := 0; i < 5; i++ {
		b.RecordPrimary()
	}
	if !b.Allow() {
		t.Fatal("earned secondary denied")
	}
	if b.Allow() {
		t.Fatal("secondary granted beyond the earned tokens")
	}

	if am.RetryBudgetGranted.Load() != 11 || am.RetryBudgetDenied.Load() != 2 {
		t.Fatalf("counters: granted=%d denied=%d",
			am.RetryBudgetGranted.Load(), am.RetryBudgetDenied.Load())
	}
}

func TestRetryBudgetTokensCapAtBurst(t *testing.T) {
	b := remote.NewRetryBudget(1, nil)
	// A long healthy stretch must not bank unlimited retries.
	for i := 0; i < 1000; i++ {
		b.RecordPrimary()
	}
	granted := 0
	for b.Allow() {
		granted++
		if granted > 100 {
			break
		}
	}
	if granted != 10 {
		t.Fatalf("banked %d secondaries, want the burst cap of 10", granted)
	}
}

func TestRetryBudgetConcurrent(t *testing.T) {
	b := remote.NewRetryBudget(0.5, metrics.New().Admission())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				b.RecordPrimary()
				b.Allow()
			}
		}()
	}
	wg.Wait()
}

// TestBudgetExhaustedStopsFailover: with the retry budget spent, a failed
// primary is NOT retried against its replica — the shard surfaces the
// primary's error instead of multiplying load on a struggling cluster.
// (Driven at the Shard layer: the corpus fan-out above it adds its own
// transparent retry, which would mask the denial by rotating to the healthy
// replica as the next attempt's primary.)
func TestBudgetExhaustedStopsFailover(t *testing.T) {
	t.Parallel()
	docs := slices(t, 1)
	ts := shardServer(t, docs[0])
	reg := faults.New()
	met := metrics.New().Remote("cluster")
	am := metrics.New().Admission()

	clients := make([]*remote.Client, 2)
	for j := 0; j < 2; j++ {
		cl, err := remote.NewClient(remote.ClientConfig{
			BaseURL: ts.URL,
			Name:    fmt.Sprintf("r0-%d", j),
			Faults:  reg,
			Metrics: met,
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[j] = cl
	}
	budget := remote.NewRetryBudget(0.1, am)
	for budget.Allow() {
		// burn the initial burst so the next secondary needs earned tokens
	}
	sh, err := remote.NewShard("cluster-00", clients, remote.ShardOptions{
		HedgeDelay: -1,
		Metrics:    met,
		Budget:     budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg.Enable(faults.Injection{
		Site: remote.FaultRPC,
		Keys: []string{"r0-0"},
		Err:  errors.New("injected connection failure"),
	})
	q := parse(t, "//item/name")
	opts := core.SearchOptions{K: 5}

	// Round-robin puts r0-0 (faulted) first: the primary fails, the budget
	// denies the failover, the search fails.
	if _, err := sh.SearchShard(context.Background(), q, opts); err == nil {
		t.Fatal("search succeeded: failover ran despite an exhausted retry budget")
	}
	if met.Failovers.Load() != 0 {
		t.Fatalf("Failovers = %d, want 0 (budget denied)", met.Failovers.Load())
	}
	if am.RetryBudgetDenied.Load() == 0 {
		t.Fatal("denial not counted")
	}

	// Earn a retry (ten primaries at ratio 0.1), let the rotation pass the
	// healthy replica, then hit the faulted primary again: this time the
	// budget covers the failover and the replica answers.
	for i := 0; i < 10; i++ {
		budget.RecordPrimary()
	}
	if _, err := sh.SearchShard(context.Background(), q, opts); err != nil {
		t.Fatalf("healthy-primary search failed: %v", err)
	}
	res, err := sh.SearchShard(context.Background(), q, opts)
	if err != nil {
		t.Fatalf("earned failover failed: %v", err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("failover answer empty")
	}
	if met.Failovers.Load() != 1 {
		t.Fatalf("Failovers = %d, want 1", met.Failovers.Load())
	}
}
