// Package slo tracks service-level objectives over the serving surface:
// declared targets ("99.9% of requests succeed", "99% of searches answer
// within 50ms") measured over sliding windows, reported as compliance and
// burn rates.
//
// The burn rate is the standard multi-window alerting signal: the rate at
// which the error budget (1 - target) is being consumed, so burn 1.0 means
// "exactly on budget", burn 14.4 over a 5-minute window means "at this rate
// the whole monthly budget is gone in two days" — the conventional page
// threshold.  Each objective is tracked over two windows at once: a fast
// window (default 5m) that reacts to acute failure, and a slow window
// (default 1h) that smooths the same signal for ticket-grade alerts.
// Observations land in fixed-width ring buckets, so memory per objective is
// constant whatever the traffic.
//
// The package is intentionally self-contained (stdlib only): the metrics
// registry embeds its Snapshot as an opaque value and the server appends its
// Prometheus exposition, so the layering stays
// slo <- metrics-consumers, never the reverse.
package slo

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Defaults applied by New for zero Config fields.
const (
	DefaultFastWindow = 5 * time.Minute
	DefaultSlowWindow = time.Hour
	// DefaultFastBurnAlert is the fast-window burn rate that flips an
	// objective to burning: 14.4 × budget consumption corresponds to
	// exhausting a 30-day budget in ~2 days — the classic page threshold.
	DefaultFastBurnAlert = 14.4
	// DefaultMinEvents is the fast-window event floor below which an
	// objective never reports burning: one unlucky request in a quiet window
	// is noise, not an incident.
	DefaultMinEvents = 10
)

// Objective declares one service-level objective.
type Objective struct {
	// Name labels the objective in metrics and /readyz ("search-p99",
	// "availability").  Required, unique within a Tracker.
	Name string `json:"name"`
	// Endpoint restricts the objective to one metrics endpoint name
	// ("query", "complete"); "" observes every tracked endpoint.
	Endpoint string `json:"endpoint,omitempty"`
	// Target is the required good-event fraction, in (0, 1) — 0.999 means
	// three nines.
	Target float64 `json:"target"`
	// Threshold, when positive, makes this a latency objective: a request is
	// good when it answered within Threshold and did not fail server-side.
	// Zero makes it an availability objective: bad means a 5xx response.
	Threshold time.Duration `json:"-"`
}

// bad classifies one observation against the objective.
func (o *Objective) bad(status int, d time.Duration) bool {
	if status >= 500 {
		return true
	}
	return o.Threshold > 0 && d > o.Threshold
}

// Config tunes a Tracker.  The zero value of every field but Objectives is
// usable (defaults above).
type Config struct {
	Objectives []Objective
	// FastWindow is the acute window (default 5m): its burn rate drives the
	// burning signal surfaced on /readyz.
	FastWindow time.Duration
	// SlowWindow is the smoothing window (default 1h): compliance and the
	// slow burn rate are computed over it.
	SlowWindow time.Duration
	// FastBurnAlert is the fast-window burn rate at which an objective
	// reports burning (default 14.4).
	FastBurnAlert float64
	// MinEvents is the fast-window event floor for the burning signal
	// (default 10).
	MinEvents int64
	// Now overrides the clock (tests); nil uses time.Now.
	Now func() time.Time
}

// bucket is one fixed-width slice of the sliding windows.  epoch is the
// bucket's absolute index on the width grid; a slot whose epoch fell out of
// the slow window is reset in place on next touch and skipped by sums.
type bucket struct {
	epoch     int64
	good, bad int64
}

// objective is one tracked objective's live state.
type objective struct {
	Objective

	mu sync.Mutex
	// goodTotal/badTotal are lifetime monotone counters — the Prometheus
	// counter pair an external rule engine can window itself.
	goodTotal, badTotal int64
	buckets             []bucket
}

// Tracker tracks a set of objectives.  Safe for concurrent use.
type Tracker struct {
	fast, slow time.Duration
	width      time.Duration
	alert      float64
	minEvents  int64
	now        func() time.Time
	objectives []*objective
}

// New validates the objectives and builds a Tracker.  It errors on an empty
// set, an unnamed or duplicated objective, or a target outside (0, 1).
func New(cfg Config) (*Tracker, error) {
	if len(cfg.Objectives) == 0 {
		return nil, fmt.Errorf("slo: no objectives declared")
	}
	fast := cfg.FastWindow
	if fast <= 0 {
		fast = DefaultFastWindow
	}
	slow := cfg.SlowWindow
	if slow <= 0 {
		slow = DefaultSlowWindow
	}
	if slow < fast {
		return nil, fmt.Errorf("slo: slow window %v shorter than fast window %v", slow, fast)
	}
	width := fast / 30
	if width < time.Second {
		width = time.Second
	}
	n := int(slow/width) + 1
	alert := cfg.FastBurnAlert
	if alert <= 0 {
		alert = DefaultFastBurnAlert
	}
	minEvents := cfg.MinEvents
	if minEvents <= 0 {
		minEvents = DefaultMinEvents
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	t := &Tracker{fast: fast, slow: slow, width: width, alert: alert, minEvents: minEvents, now: now}
	seen := make(map[string]bool, len(cfg.Objectives))
	for _, ob := range cfg.Objectives {
		if ob.Name == "" {
			return nil, fmt.Errorf("slo: objective needs a name")
		}
		if seen[ob.Name] {
			return nil, fmt.Errorf("slo: duplicate objective %q", ob.Name)
		}
		seen[ob.Name] = true
		if ob.Target <= 0 || ob.Target >= 1 {
			return nil, fmt.Errorf("slo: objective %q target %v: want 0 < target < 1", ob.Name, ob.Target)
		}
		t.objectives = append(t.objectives, &objective{
			Objective: ob,
			buckets:   make([]bucket, n),
		})
	}
	return t, nil
}

// Observe feeds one finished request into every matching objective.
func (t *Tracker) Observe(endpoint string, status int, d time.Duration) {
	if t == nil {
		return
	}
	epoch := t.now().UnixNano() / int64(t.width)
	for _, o := range t.objectives {
		if o.Endpoint != "" && o.Endpoint != endpoint {
			continue
		}
		bad := o.bad(status, d)
		o.mu.Lock()
		b := &o.buckets[int(epoch%int64(len(o.buckets)))]
		if b.epoch != epoch {
			b.epoch, b.good, b.bad = epoch, 0, 0
		}
		if bad {
			b.bad++
			o.badTotal++
		} else {
			b.good++
			o.goodTotal++
		}
		o.mu.Unlock()
	}
}

// windowRates sums one objective's buckets over the trailing window ending
// at epoch.  Caller holds o.mu.
func (t *Tracker) windowRates(o *objective, epoch int64, window time.Duration) (good, bad int64) {
	span := int64(window / t.width)
	if span < 1 {
		span = 1
	}
	for i := range o.buckets {
		b := &o.buckets[i]
		if b.epoch > epoch-span && b.epoch <= epoch {
			good += b.good
			bad += b.bad
		}
	}
	return good, bad
}

// burnRate converts a window's counts to an error-budget burn rate: the
// observed bad fraction over the budget fraction (1 - target).  1.0 means
// consuming exactly the budget; 0 with no events.
func burnRate(good, bad int64, target float64) float64 {
	total := good + bad
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - target)
}

// ObjectiveStatus is the reported state of one objective.
type ObjectiveStatus struct {
	Name        string  `json:"name"`
	Endpoint    string  `json:"endpoint,omitempty"`
	Target      float64 `json:"target"`
	ThresholdMS float64 `json:"thresholdMs,omitempty"`
	// GoodTotal/BadTotal are lifetime event counters (monotone).
	GoodTotal int64 `json:"goodTotal"`
	BadTotal  int64 `json:"badTotal"`
	// Compliance is the good fraction over the slow window; 1 with no events
	// (an idle objective is compliant, not broken).
	Compliance float64 `json:"compliance"`
	// FastBurnRate/SlowBurnRate are the error-budget burn rates over the two
	// windows (1.0 = consuming exactly the budget).
	FastBurnRate float64 `json:"fastBurnRate"`
	SlowBurnRate float64 `json:"slowBurnRate"`
	// Burning reports the page-grade condition: fast-window burn at or above
	// the alert threshold with at least MinEvents observations.
	Burning bool `json:"burning"`
}

// Snapshot is the JSON view of the tracker (embedded in /api/v1/metrics).
type Snapshot struct {
	FastWindowSeconds float64           `json:"fastWindowSeconds"`
	SlowWindowSeconds float64           `json:"slowWindowSeconds"`
	FastBurnAlert     float64           `json:"fastBurnAlert"`
	Objectives        []ObjectiveStatus `json:"objectives"`
}

// status materializes one objective's current state.
func (t *Tracker) status(o *objective) ObjectiveStatus {
	epoch := t.now().UnixNano() / int64(t.width)
	o.mu.Lock()
	defer o.mu.Unlock()
	fg, fb := t.windowRates(o, epoch, t.fast)
	sg, sb := t.windowRates(o, epoch, t.slow)
	st := ObjectiveStatus{
		Name:         o.Name,
		Endpoint:     o.Endpoint,
		Target:       o.Target,
		GoodTotal:    o.goodTotal,
		BadTotal:     o.badTotal,
		Compliance:   1,
		FastBurnRate: burnRate(fg, fb, o.Target),
		SlowBurnRate: burnRate(sg, sb, o.Target),
	}
	if o.Threshold > 0 {
		st.ThresholdMS = float64(o.Threshold.Microseconds()) / 1000
	}
	if total := sg + sb; total > 0 {
		st.Compliance = float64(sg) / float64(total)
	}
	st.Burning = fg+fb >= t.minEvents && st.FastBurnRate >= t.alert
	return st
}

// Snapshot reports every objective's current state.
func (t *Tracker) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	s := Snapshot{
		FastWindowSeconds: t.fast.Seconds(),
		SlowWindowSeconds: t.slow.Seconds(),
		FastBurnAlert:     t.alert,
		Objectives:        make([]ObjectiveStatus, 0, len(t.objectives)),
	}
	for _, o := range t.objectives {
		s.Objectives = append(s.Objectives, t.status(o))
	}
	return s
}

// Burning summarizes the objectives currently burning their fast window,
// "" when none is — the string /readyz appends as "ready (slo-burning): ...".
func (t *Tracker) Burning() string {
	if t == nil {
		return ""
	}
	var parts []string
	for _, o := range t.objectives {
		if st := t.status(o); st.Burning {
			parts = append(parts, fmt.Sprintf("%s burn %.1fx", st.Name, st.FastBurnRate))
		}
	}
	return strings.Join(parts, "; ")
}

// WritePrometheus renders the lotusx_slo_* families in text exposition
// format 0.0.4.  The server appends this after the registry's families, so
// the objectives ride the same scrape.
func (t *Tracker) WritePrometheus(w io.Writer) {
	if t == nil {
		return
	}
	sts := make([]ObjectiveStatus, 0, len(t.objectives))
	for _, o := range t.objectives {
		sts = append(sts, t.status(o))
	}
	writeFamily(w, "lotusx_slo_target", "Declared good-event fraction of the objective.", "gauge",
		sts, func(st ObjectiveStatus) float64 { return st.Target })
	writeFamily(w, "lotusx_slo_good_total", "Lifetime events meeting the objective.", "counter",
		sts, func(st ObjectiveStatus) float64 { return float64(st.GoodTotal) })
	writeFamily(w, "lotusx_slo_bad_total", "Lifetime events violating the objective.", "counter",
		sts, func(st ObjectiveStatus) float64 { return float64(st.BadTotal) })
	writeFamily(w, "lotusx_slo_compliance", "Good-event fraction over the slow window (1 when idle).", "gauge",
		sts, func(st ObjectiveStatus) float64 { return st.Compliance })
	// Burn rates carry a window label; rendered by hand since the shared
	// helper is single-label.
	fmt.Fprintf(w, "# HELP lotusx_slo_burn_rate Error-budget burn rate over the labeled window (1 = on budget).\n")
	fmt.Fprintf(w, "# TYPE lotusx_slo_burn_rate gauge\n")
	for _, st := range sts {
		fmt.Fprintf(w, "lotusx_slo_burn_rate{objective=%q,window=\"fast\"} %g\n", st.Name, st.FastBurnRate)
		fmt.Fprintf(w, "lotusx_slo_burn_rate{objective=%q,window=\"slow\"} %g\n", st.Name, st.SlowBurnRate)
	}
	writeFamily(w, "lotusx_slo_burning", "1 while the fast window burns at or above the alert threshold.", "gauge",
		sts, func(st ObjectiveStatus) float64 {
			if st.Burning {
				return 1
			}
			return 0
		})
}

// writeFamily renders one objective-labeled family.
func writeFamily(w io.Writer, name, help, typ string, sts []ObjectiveStatus, val func(ObjectiveStatus) float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, st := range sts {
		fmt.Fprintf(w, "%s{objective=%q} %g\n", name, st.Name, val(st))
	}
}
