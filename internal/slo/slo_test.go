package slo

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// clock is an injectable test clock.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *clock {
	return &clock{t: time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC)}
}

func (c *clock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTracker(t *testing.T, cfg Config) *Tracker {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidates(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"empty", Config{}},
		{"unnamed", Config{Objectives: []Objective{{Target: 0.99}}}},
		{"duplicate", Config{Objectives: []Objective{
			{Name: "a", Target: 0.99}, {Name: "a", Target: 0.9},
		}}},
		{"target zero", Config{Objectives: []Objective{{Name: "a"}}}},
		{"target one", Config{Objectives: []Objective{{Name: "a", Target: 1}}}},
		{"windows inverted", Config{
			Objectives: []Objective{{Name: "a", Target: 0.99}},
			FastWindow: time.Hour, SlowWindow: time.Minute,
		}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted a bad config", tc.name)
		}
	}
}

func TestAvailabilityBurn(t *testing.T) {
	ck := newClock()
	tr := newTracker(t, Config{
		Objectives: []Objective{{Name: "availability", Target: 0.999}},
		Now:        ck.now,
	})

	// 100 good requests: compliant, no burn.
	for i := 0; i < 100; i++ {
		tr.Observe("query", 200, 5*time.Millisecond)
	}
	st := tr.Snapshot().Objectives[0]
	if st.Compliance != 1 || st.FastBurnRate != 0 || st.Burning {
		t.Fatalf("healthy objective reports %+v", st)
	}

	// Half the next 100 fail: bad ratio 25% over a 0.1% budget is a
	// 250x burn — far past the 14.4 alert line.
	for i := 0; i < 100; i++ {
		status := 200
		if i%2 == 0 {
			status = 500
		}
		tr.Observe("query", status, 5*time.Millisecond)
	}
	st = tr.Snapshot().Objectives[0]
	if !st.Burning {
		t.Fatalf("50%% failures did not flip burning: %+v", st)
	}
	if st.FastBurnRate < 100 {
		t.Fatalf("fast burn %v, want ~250", st.FastBurnRate)
	}
	if st.GoodTotal != 150 || st.BadTotal != 50 {
		t.Fatalf("lifetime counters good=%d bad=%d, want 150/50", st.GoodTotal, st.BadTotal)
	}
	if msg := tr.Burning(); !strings.Contains(msg, "availability burn") {
		t.Fatalf("Burning() = %q", msg)
	}

	// The failures age out of the fast window but stay in the slow one.
	ck.advance(6 * time.Minute)
	st = tr.Snapshot().Objectives[0]
	if st.FastBurnRate != 0 || st.Burning {
		t.Fatalf("fast window did not slide: %+v", st)
	}
	if st.SlowBurnRate == 0 {
		t.Fatal("slow window lost the failures after 6m")
	}
	if tr.Burning() != "" {
		t.Fatalf("Burning() = %q after recovery", tr.Burning())
	}

	// ...and eventually out of the slow window too.
	ck.advance(time.Hour)
	st = tr.Snapshot().Objectives[0]
	if st.SlowBurnRate != 0 || st.Compliance != 1 {
		t.Fatalf("slow window did not slide: %+v", st)
	}
	if st.GoodTotal != 150 || st.BadTotal != 50 {
		t.Fatal("lifetime counters are not monotone across window slides")
	}
}

func TestLatencyObjective(t *testing.T) {
	ck := newClock()
	tr := newTracker(t, Config{
		Objectives: []Objective{{
			Name: "search-p99", Endpoint: "query", Target: 0.99,
			Threshold: 50 * time.Millisecond,
		}},
		Now: ck.now,
	})

	// Only query observations count, and only slow (or 5xx) ones are bad.
	tr.Observe("complete", 200, time.Second) // wrong endpoint: ignored
	tr.Observe("query", 200, 10*time.Millisecond)
	tr.Observe("query", 200, 200*time.Millisecond) // too slow
	tr.Observe("query", 500, time.Millisecond)     // failed

	st := tr.Snapshot().Objectives[0]
	if st.GoodTotal != 1 || st.BadTotal != 2 {
		t.Fatalf("good=%d bad=%d, want 1/2", st.GoodTotal, st.BadTotal)
	}
	if st.ThresholdMS != 50 {
		t.Fatalf("thresholdMs = %v, want 50", st.ThresholdMS)
	}
}

func TestMinEventsFloor(t *testing.T) {
	ck := newClock()
	tr := newTracker(t, Config{
		Objectives: []Objective{{Name: "availability", Target: 0.999}},
		MinEvents:  10,
		Now:        ck.now,
	})
	// 5 failures burn hard but sit under the event floor: not an incident.
	for i := 0; i < 5; i++ {
		tr.Observe("query", 500, time.Millisecond)
	}
	if st := tr.Snapshot().Objectives[0]; st.Burning {
		t.Fatalf("%d events flipped burning below the MinEvents floor", st.GoodTotal+st.BadTotal)
	}
}

func TestIdleSnapshot(t *testing.T) {
	tr := newTracker(t, Config{
		Objectives: []Objective{{Name: "availability", Target: 0.999}},
	})
	st := tr.Snapshot().Objectives[0]
	if st.Compliance != 1 || st.FastBurnRate != 0 || st.SlowBurnRate != 0 || st.Burning {
		t.Fatalf("idle objective reports %+v", st)
	}
}

func TestNilTracker(t *testing.T) {
	var tr *Tracker
	tr.Observe("query", 500, time.Second)
	if s := tr.Snapshot(); len(s.Objectives) != 0 {
		t.Fatal("nil Snapshot non-empty")
	}
	if tr.Burning() != "" {
		t.Fatal("nil Burning non-empty")
	}
	var sb strings.Builder
	tr.WritePrometheus(&sb)
	if sb.Len() != 0 {
		t.Fatal("nil WritePrometheus wrote output")
	}
}

func TestWritePrometheus(t *testing.T) {
	ck := newClock()
	tr := newTracker(t, Config{
		Objectives: []Objective{
			{Name: "availability", Target: 0.999},
			{Name: "search-p99", Endpoint: "query", Target: 0.99, Threshold: 50 * time.Millisecond},
		},
		Now: ck.now,
	})
	for i := 0; i < 20; i++ {
		tr.Observe("query", 500, time.Millisecond)
	}
	var sb strings.Builder
	tr.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE lotusx_slo_target gauge",
		"# TYPE lotusx_slo_good_total counter",
		"# TYPE lotusx_slo_bad_total counter",
		"# TYPE lotusx_slo_compliance gauge",
		"# TYPE lotusx_slo_burn_rate gauge",
		"# TYPE lotusx_slo_burning gauge",
		`lotusx_slo_target{objective="availability"} 0.999`,
		`lotusx_slo_bad_total{objective="availability"} 20`,
		`lotusx_slo_burn_rate{objective="availability",window="fast"} 9`,
		`lotusx_slo_burn_rate{objective="availability",window="slow"} 9`,
		`lotusx_slo_burning{objective="availability"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestConcurrentObserve(t *testing.T) {
	tr := newTracker(t, Config{
		Objectives: []Objective{{Name: "availability", Target: 0.99}},
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Observe("query", 200, time.Millisecond)
				tr.Snapshot()
			}
		}()
	}
	wg.Wait()
	if st := tr.Snapshot().Objectives[0]; st.GoodTotal != 1600 {
		t.Fatalf("goodTotal = %d, want 1600", st.GoodTotal)
	}
}
