// Package trie implements a weighted rune trie with top-k prefix completion
// and bounded-edit-distance (fuzzy) completion.  LotusX keeps one trie over
// tag names and one over value tokens; the auto-completion engine intersects
// trie candidates with the position-feasible set from the DataGuide.
package trie

import (
	"container/heap"
	"sort"
)

// Entry is a completion result.
type Entry struct {
	Word   string
	Weight int64 // caller-defined weight, typically an occurrence count
	Datum  int32 // caller-defined payload, e.g. a TagID; -1 if unused
}

type node struct {
	children map[rune]*node
	// entry payload; present iff terminal.
	terminal bool
	weight   int64
	datum    int32
	// maxWeight is the largest terminal weight in this subtree; it lets
	// top-k completion explore best-first and stop early.
	maxWeight int64
}

func newNode() *node { return &node{children: make(map[rune]*node), datum: -1} }

// Trie is a weighted prefix tree.  It is not safe for concurrent mutation;
// after the last Insert it is safe for concurrent readers.
type Trie struct {
	root *node
	size int
}

// New returns an empty Trie.
func New() *Trie { return &Trie{root: newNode()} }

// Len returns the number of distinct words stored.
func (t *Trie) Len() int { return t.size }

// Insert adds word with the given weight and payload.  Inserting an existing
// word adds the weight to the stored weight (and keeps the existing payload),
// so repeated insertions accumulate occurrence counts.
func (t *Trie) Insert(word string, weight int64, datum int32) {
	cur := t.root
	var path []*node
	path = append(path, cur)
	for _, r := range word {
		next, ok := cur.children[r]
		if !ok {
			next = newNode()
			cur.children[r] = next
		}
		cur = next
		path = append(path, cur)
	}
	if cur.terminal {
		cur.weight += weight
	} else {
		cur.terminal = true
		cur.weight = weight
		cur.datum = datum
		t.size++
	}
	for _, n := range path {
		if cur.weight > n.maxWeight {
			n.maxWeight = cur.weight
		}
	}
}

// Contains reports whether word was inserted.
func (t *Trie) Contains(word string) bool {
	n := t.descend(word)
	return n != nil && n.terminal
}

// Weight returns the accumulated weight of word, or 0 if absent.
func (t *Trie) Weight(word string) int64 {
	n := t.descend(word)
	if n == nil || !n.terminal {
		return 0
	}
	return n.weight
}

func (t *Trie) descend(prefix string) *node {
	cur := t.root
	for _, r := range prefix {
		next, ok := cur.children[r]
		if !ok {
			return nil
		}
		cur = next
	}
	return cur
}

// frontierItem is one unit of best-first exploration: either a subtree to
// expand (emit == false, bound == subtree max weight) or a concrete terminal
// to output (emit == true, bound == its exact weight).
type frontierItem struct {
	n      *node
	prefix string
	bound  int64
	emit   bool
}

type frontier []frontierItem

func (f frontier) Len() int { return len(f) }
func (f frontier) Less(i, j int) bool {
	if f[i].bound != f[j].bound {
		return f[i].bound > f[j].bound
	}
	return f[i].prefix < f[j].prefix // deterministic tie-break
}
func (f frontier) Swap(i, j int) { f[i], f[j] = f[j], f[i] }
func (f *frontier) Push(x any)   { *f = append(*f, x.(frontierItem)) }
func (f *frontier) Pop() any {
	old := *f
	n := len(old)
	it := old[n-1]
	*f = old[:n-1]
	return it
}

// Complete returns up to k words starting with prefix, heaviest first.
// Best-first exploration over subtree weight bounds makes the cost
// proportional to the answer size, not the subtree size.  Ties are broken
// lexicographically for determinism.
func (t *Trie) Complete(prefix string, k int) []Entry {
	if k <= 0 {
		return nil
	}
	start := t.descend(prefix)
	if start == nil {
		return nil
	}
	return completeNode(start, prefix, k)
}

// completeNode runs best-first top-k completion from start, whose
// accumulated word so far is prefix.
func completeNode(start *node, prefix string, k int) []Entry {
	var out []Entry
	f := &frontier{{n: start, prefix: prefix, bound: start.maxWeight}}
	heap.Init(f)
	for f.Len() > 0 && len(out) < k {
		it := heap.Pop(f).(frontierItem)
		if it.emit {
			out = append(out, Entry{Word: it.prefix, Weight: it.bound, Datum: it.n.datum})
			continue
		}
		if it.n.terminal {
			heap.Push(f, frontierItem{n: it.n, prefix: it.prefix, bound: it.n.weight, emit: true})
		}
		for r, c := range it.n.children {
			heap.Push(f, frontierItem{n: c, prefix: it.prefix + string(r), bound: c.maxWeight})
		}
	}
	stabilize(out)
	return out
}

// stabilize sorts equal-weight runs lexicographically so completion output
// is deterministic across map iteration orders.
func stabilize(out []Entry) {
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Word < out[j].Word
	})
}

// Walk calls fn for every stored word in lexicographic order; fn returning
// false stops the walk.
func (t *Trie) Walk(fn func(Entry) bool) {
	t.walk(t.root, "", fn)
}

func (t *Trie) walk(n *node, prefix string, fn func(Entry) bool) bool {
	if n.terminal {
		if !fn(Entry{Word: prefix, Weight: n.weight, Datum: n.datum}) {
			return false
		}
	}
	runes := make([]rune, 0, len(n.children))
	for r := range n.children {
		runes = append(runes, r)
	}
	sort.Slice(runes, func(i, j int) bool { return runes[i] < runes[j] })
	for _, r := range runes {
		if !t.walk(n.children[r], prefix+string(r), fn) {
			return false
		}
	}
	return true
}
