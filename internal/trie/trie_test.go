package trie

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestInsertContainsWeight(t *testing.T) {
	tr := New()
	tr.Insert("author", 3, 7)
	tr.Insert("auth", 1, 8)
	tr.Insert("author", 2, 99) // accumulates, keeps first datum

	if !tr.Contains("author") || !tr.Contains("auth") {
		t.Fatal("inserted words missing")
	}
	if tr.Contains("aut") || tr.Contains("authors") || tr.Contains("") {
		t.Fatal("non-inserted words present")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if w := tr.Weight("author"); w != 5 {
		t.Fatalf("Weight = %d, want 5", w)
	}
	if w := tr.Weight("missing"); w != 0 {
		t.Fatalf("Weight(missing) = %d, want 0", w)
	}
}

func TestCompleteOrdering(t *testing.T) {
	tr := New()
	words := map[string]int64{
		"author": 50, "auction": 30, "austria": 30, "authority": 10,
		"title": 100, "auth": 5,
	}
	for w, wt := range words {
		tr.Insert(w, wt, -1)
	}
	got := tr.Complete("au", 10)
	var names []string
	for _, e := range got {
		names = append(names, e.Word)
	}
	// Weight-descending, lexicographic among ties (auction < austria).
	want := []string{"author", "auction", "austria", "authority", "auth"}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Fatalf("Complete = %v, want %v", names, want)
	}
}

func TestCompleteK(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(fmt.Sprintf("word%03d", i), int64(i), int32(i))
	}
	got := tr.Complete("word", 5)
	if len(got) != 5 {
		t.Fatalf("len = %d", len(got))
	}
	for i, e := range got {
		if e.Weight != int64(99-i) {
			t.Fatalf("entry %d weight = %d, want %d", i, e.Weight, 99-i)
		}
		if e.Datum != int32(99-i) {
			t.Fatalf("entry %d datum = %d, want %d", i, e.Datum, 99-i)
		}
	}
	if got := tr.Complete("word", 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	if got := tr.Complete("zzz", 5); got != nil {
		t.Fatal("missing prefix should return nil")
	}
}

func TestCompleteEmptyPrefixListsAll(t *testing.T) {
	tr := New()
	tr.Insert("a", 1, -1)
	tr.Insert("b", 2, -1)
	got := tr.Complete("", 10)
	if len(got) != 2 || got[0].Word != "b" {
		t.Fatalf("got %v", got)
	}
}

func TestExactWordIsItsOwnCompletion(t *testing.T) {
	tr := New()
	tr.Insert("year", 1, -1)
	got := tr.Complete("year", 3)
	if len(got) != 1 || got[0].Word != "year" {
		t.Fatalf("got %v", got)
	}
}

func TestCompleteAgainstBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alphabet := []rune("abc")
	for trial := 0; trial < 50; trial++ {
		tr := New()
		ref := make(map[string]int64)
		n := 1 + rng.Intn(60)
		for i := 0; i < n; i++ {
			l := 1 + rng.Intn(6)
			var b strings.Builder
			for j := 0; j < l; j++ {
				b.WriteRune(alphabet[rng.Intn(len(alphabet))])
			}
			w := b.String()
			wt := int64(1 + rng.Intn(20))
			tr.Insert(w, wt, -1)
			ref[w] += wt
		}
		prefix := ""
		if rng.Intn(2) == 0 {
			prefix = string(alphabet[rng.Intn(len(alphabet))])
		}
		k := 1 + rng.Intn(8)

		// Brute-force reference.
		type kv struct {
			w  string
			wt int64
		}
		var all []kv
		for w, wt := range ref {
			if strings.HasPrefix(w, prefix) {
				all = append(all, kv{w, wt})
			}
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].wt != all[j].wt {
				return all[i].wt > all[j].wt
			}
			return all[i].w < all[j].w
		})
		if len(all) > k {
			all = all[:k]
		}
		got := tr.Complete(prefix, k)
		if len(got) != len(all) {
			t.Fatalf("trial %d: len %d want %d", trial, len(got), len(all))
		}
		for i := range all {
			if got[i].Word != all[i].w || got[i].Weight != all[i].wt {
				t.Fatalf("trial %d: entry %d = %+v, want %+v", trial, i, got[i], all[i])
			}
		}
	}
}

func TestWalkLexicographic(t *testing.T) {
	tr := New()
	words := []string{"b", "a", "ab", "aa", "ba"}
	for _, w := range words {
		tr.Insert(w, 1, -1)
	}
	var got []string
	tr.Walk(func(e Entry) bool {
		got = append(got, e.Word)
		return true
	})
	want := []string{"a", "aa", "ab", "b", "ba"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("Walk order = %v, want %v", got, want)
	}

	// Early stop.
	got = got[:0]
	tr.Walk(func(e Entry) bool {
		got = append(got, e.Word)
		return len(got) < 2
	})
	if len(got) != 2 {
		t.Fatalf("early-stopped walk yielded %d entries", len(got))
	}
}

func TestFuzzyCompleteTypo(t *testing.T) {
	tr := New()
	tr.Insert("author", 10, 1)
	tr.Insert("title", 5, 2)
	tr.Insert("auction", 3, 3)

	got := tr.FuzzyComplete("athor", 1, 5) // missing 'u'
	if len(got) == 0 || got[0].Word != "author" {
		t.Fatalf("fuzzy got %v, want author first", got)
	}
	// Distance 0 should behave like Complete.
	got = tr.FuzzyComplete("tit", 0, 5)
	if len(got) != 1 || got[0].Word != "title" {
		t.Fatalf("dist-0 fuzzy got %v", got)
	}
}

func TestFuzzyPrefersExactPrefix(t *testing.T) {
	tr := New()
	tr.Insert("cat", 1, -1)
	tr.Insert("car", 100, -1)
	got := tr.FuzzyComplete("cat", 1, 5)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	// "cat" is distance 0, must precede heavier distance-1 "car".
	if got[0].Word != "cat" || got[1].Word != "car" {
		t.Fatalf("order = %v", got)
	}
}

func TestFuzzyRespectsBudget(t *testing.T) {
	tr := New()
	tr.Insert("abcdef", 1, -1)
	if got := tr.FuzzyComplete("xyzdef", 2, 5); len(got) != 0 {
		t.Fatalf("distance-3 prefix matched: %v", got)
	}
	if got := tr.FuzzyComplete("axcdef", 1, 5); len(got) != 1 {
		t.Fatalf("distance-1 prefix missed: %v", got)
	}
}

func TestFuzzyKZero(t *testing.T) {
	tr := New()
	tr.Insert("a", 1, -1)
	if got := tr.FuzzyComplete("a", 1, 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestFuzzyPrefixExtension(t *testing.T) {
	// A query that is a prefix of stored words within distance: the whole
	// subtree completes.
	tr := New()
	tr.Insert("person", 4, -1)
	tr.Insert("personalize", 2, -1)
	got := tr.FuzzyComplete("persn", 1, 5)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestUnicodeWords(t *testing.T) {
	tr := New()
	tr.Insert("日本語", 3, -1)
	tr.Insert("日本", 5, -1)
	got := tr.Complete("日", 5)
	if len(got) != 2 || got[0].Word != "日本" {
		t.Fatalf("unicode completion = %v", got)
	}
	if !tr.Contains("日本語") {
		t.Fatal("unicode word missing")
	}
}
