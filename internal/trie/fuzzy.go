package trie

import "sort"

// FuzzyComplete returns words whose prefix is within edit distance maxDist
// of the query prefix, heaviest first, at most k.  It powers LotusX's
// tolerance to typos while the user grows a query node: "athor" still
// suggests "author".  Exact-prefix matches sort before fuzzy ones of equal
// weight (distance is a secondary key).
//
// The search runs the classic trie × dynamic-programming-row algorithm: each
// trie edge extends a Levenshtein row against the query; branches whose row
// minimum exceeds maxDist are pruned.
func (t *Trie) FuzzyComplete(prefix string, maxDist, k int) []Entry {
	if k <= 0 {
		return nil
	}
	if maxDist <= 0 {
		return t.Complete(prefix, k)
	}
	q := []rune(prefix)
	row := make([]int, len(q)+1)
	for i := range row {
		row[i] = i
	}
	type hit struct {
		Entry
		dist int
	}
	var hits []hit

	// The prefix edit distance of a word w is min over w's prefixes p of
	// levenshtein(q, p); at each trie node it equals the minimum of
	// row[len(q)] along the root path so far ("best").  Because row minima
	// are nondecreasing as the path extends, once minOf(row) >= best the
	// distance of every word below is settled at best and the subtree can be
	// emitted wholesale; otherwise we keep descending to find improvements.
	var walk func(n *node, soFar string, prev []int, best int)
	walk = func(n *node, soFar string, prev []int, best int) {
		if d := prev[len(q)]; d < best {
			best = d
		}
		if best == 0 || minOf(prev) >= best {
			if best <= maxDist {
				for _, e := range completeFrom(n, soFar, k) {
					hits = append(hits, hit{e, best})
				}
			}
			return
		}
		if n.terminal && best <= maxDist {
			hits = append(hits, hit{Entry{Word: soFar, Weight: n.weight, Datum: n.datum}, best})
		}
		cur := make([]int, len(q)+1)
		for r, c := range n.children {
			cur[0] = prev[0] + 1
			for i := 1; i <= len(q); i++ {
				cost := 1
				if q[i-1] == r {
					cost = 0
				}
				cur[i] = min(prev[i]+1, min(cur[i-1]+1, prev[i-1]+cost))
			}
			walk(c, soFar+string(r), cur, best)
		}
	}
	walk(t.root, "", row, len(q)+1)

	sort.SliceStable(hits, func(i, j int) bool {
		if hits[i].dist != hits[j].dist {
			return hits[i].dist < hits[j].dist
		}
		if hits[i].Weight != hits[j].Weight {
			return hits[i].Weight > hits[j].Weight
		}
		return hits[i].Word < hits[j].Word
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	out := make([]Entry, len(hits))
	for i, h := range hits {
		out[i] = h.Entry
	}
	return out
}

// completeFrom lists up to k heaviest terminals under n, with soFar as the
// accumulated prefix.
func completeFrom(n *node, soFar string, k int) []Entry {
	return completeNode(n, soFar, k)
}

func minOf(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
