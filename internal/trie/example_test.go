package trie_test

import (
	"fmt"

	"lotusx/internal/trie"
)

func ExampleTrie_Complete() {
	t := trie.New()
	t.Insert("author", 50, -1)
	t.Insert("auction", 30, -1)
	t.Insert("austria", 7, -1)
	for _, e := range t.Complete("au", 2) {
		fmt.Println(e.Word, e.Weight)
	}
	// Output:
	// author 50
	// auction 30
}

func ExampleTrie_FuzzyComplete() {
	t := trie.New()
	t.Insert("author", 50, -1)
	t.Insert("title", 20, -1)
	// One edit of slack rescues the typo.
	for _, e := range t.FuzzyComplete("athor", 1, 3) {
		fmt.Println(e.Word)
	}
	// Output:
	// author
}
