package trie

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// wordSet is a quick-generatable set of weighted words over a tiny
// alphabet, adversarially prefix-heavy.
type wordSet struct {
	words   []string
	weights []int64
}

// Generate implements quick.Generator.
func (wordSet) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 1 + rng.Intn(size+1)
	ws := wordSet{}
	for i := 0; i < n; i++ {
		l := 1 + rng.Intn(5)
		var b strings.Builder
		for j := 0; j < l; j++ {
			b.WriteByte(byte('a' + rng.Intn(2)))
		}
		ws.words = append(ws.words, b.String())
		ws.weights = append(ws.weights, int64(1+rng.Intn(9)))
	}
	return reflect.ValueOf(ws)
}

// TestQuickCompleteMatchesReference: for arbitrary word sets and prefixes,
// Complete returns exactly the top-k prefix matches of a map-based
// reference implementation.
func TestQuickCompleteMatchesReference(t *testing.T) {
	f := func(ws wordSet, prefixSeed uint8, kSeed uint8) bool {
		tr := New()
		ref := make(map[string]int64)
		for i, w := range ws.words {
			tr.Insert(w, ws.weights[i], int32(i))
			ref[w] += ws.weights[i]
		}
		prefixes := []string{"", "a", "b", "ab", "ba", "aa"}
		prefix := prefixes[int(prefixSeed)%len(prefixes)]
		k := 1 + int(kSeed)%6

		type kv struct {
			w  string
			wt int64
		}
		var want []kv
		for w, wt := range ref {
			if strings.HasPrefix(w, prefix) {
				want = append(want, kv{w, wt})
			}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].wt != want[j].wt {
				return want[i].wt > want[j].wt
			}
			return want[i].w < want[j].w
		})
		if len(want) > k {
			want = want[:k]
		}
		got := tr.Complete(prefix, k)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Word != want[i].w || got[i].Weight != want[i].wt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLenMatchesDistinctWords: Len equals the number of distinct words
// regardless of insertion order and repetition.
func TestQuickLenMatchesDistinctWords(t *testing.T) {
	f := func(ws wordSet) bool {
		tr := New()
		distinct := make(map[string]struct{})
		for i, w := range ws.words {
			tr.Insert(w, ws.weights[i], -1)
			distinct[w] = struct{}{}
		}
		return tr.Len() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWalkVisitsAllInsertedWords: Walk enumerates exactly the inserted
// set in strictly increasing lexicographic order.
func TestQuickWalkVisitsAllInsertedWords(t *testing.T) {
	f := func(ws wordSet) bool {
		tr := New()
		distinct := make(map[string]struct{})
		for i, w := range ws.words {
			tr.Insert(w, ws.weights[i], -1)
			distinct[w] = struct{}{}
		}
		var visited []string
		tr.Walk(func(e Entry) bool {
			visited = append(visited, e.Word)
			return true
		})
		if len(visited) != len(distinct) {
			return false
		}
		for i, w := range visited {
			if _, ok := distinct[w]; !ok {
				return false
			}
			if i > 0 && visited[i-1] >= w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFuzzySupersetOfExact: fuzzy completion at any budget includes
// every exact-prefix completion.
func TestQuickFuzzySupersetOfExact(t *testing.T) {
	f := func(ws wordSet, prefixSeed uint8) bool {
		tr := New()
		for i, w := range ws.words {
			tr.Insert(w, ws.weights[i], -1)
		}
		prefixes := []string{"a", "b", "ab", "aa"}
		prefix := prefixes[int(prefixSeed)%len(prefixes)]
		exact := tr.Complete(prefix, 100)
		fuzzy := tr.FuzzyComplete(prefix, 1, 100)
		got := make(map[string]struct{}, len(fuzzy))
		for _, e := range fuzzy {
			got[e.Word] = struct{}{}
		}
		for _, e := range exact {
			if _, ok := got[e.Word]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
