// Package rank implements LotusX's answer ranking strategy.  The demo paper
// claims "a new ranking strategy ... to rank the query [answers]
// effectively" without publishing the formula; this is a documented
// reconstruction with the same stated goals.  Each match is scored as
//
//		score = (1 + content) × tightness × (1 + idf)
//
//	  - content rewards similarity between the query's value predicates and
//	    the matched text: exact match > prefix match > token overlap.
//	  - tightness rewards structurally compact matches: every descendant edge
//	    that matches farther apart than a direct child adds slack, and
//	    tightness = 1/(1+slack).  Among answers satisfying the same twig,
//	    the ones mirroring the query's shape most closely rank first.
//	  - idf rewards matches on rarer predicate terms, normalized to [0, 1).
//
// Ties break by document order, making rankings deterministic.
package rank

import (
	"context"
	"math"
	"sort"
	"strings"

	"lotusx/internal/index"
	"lotusx/internal/join"
	"lotusx/internal/obs"
	"lotusx/internal/twig"
)

// Scored is a match with its score and component breakdown (for Explain
// views in the GUI).
type Scored struct {
	Match     join.Match
	Score     float64
	Content   float64 // content similarity component in [0,1]
	Tightness float64 // structural tightness in (0,1]
	IDF       float64 // normalized rarity component in [0,1)
}

// Ranker scores matches over one index.
type Ranker struct {
	ix *index.Index
}

// New returns a Ranker over ix.
func New(ix *index.Index) *Ranker { return &Ranker{ix: ix} }

// RankContext is Rank under a context: when the context carries a trace, the
// scoring pass is recorded as a "rank" span with its input and output sizes.
// Ranking itself is not cancellable — it is pure CPU over already-enumerated
// matches and bounded by them.
func (r *Ranker) RankContext(ctx context.Context, q *twig.Query, matches []join.Match, k int) []Scored {
	sp := obs.StartLeaf(ctx, "rank")
	out := r.Rank(q, matches, k)
	sp.SetInt("matches", len(matches))
	sp.SetInt("ranked", len(out))
	sp.End()
	return out
}

// Rank scores all matches and returns the top k (all when k <= 0), best
// first.
func (r *Ranker) Rank(q *twig.Query, matches []join.Match, k int) []Scored {
	out := make([]Scored, 0, len(matches))
	for _, m := range matches {
		out = append(out, r.Score(q, m))
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		// Document order of the output node, then of the whole tuple.
		a, b := out[i].Match, out[j].Match
		for idx := range a {
			if a[idx] != b[idx] {
				return a[idx] < b[idx]
			}
		}
		return false
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Score computes the full score breakdown of one match.
func (r *Ranker) Score(q *twig.Query, m join.Match) Scored {
	s := Scored{
		Match:     m,
		Content:   r.contentSim(q, m),
		Tightness: r.tightness(q, m),
		IDF:       r.idf(q),
	}
	s.Score = (1 + s.Content) * s.Tightness * (1 + s.IDF)
	return s
}

// contentSim averages the per-predicate similarity between the predicate
// operand and the matched node's value.  Matches of predicate-free queries
// score 0 (the component is neutral).
func (r *Ranker) contentSim(q *twig.Query, m join.Match) float64 {
	d := r.ix.Document()
	var total float64
	var n int
	for _, qn := range q.Nodes() {
		if qn.Pred.Op == twig.NoPred {
			continue
		}
		n++
		total += valueSimilarity(strings.ToLower(qn.Pred.Value), strings.ToLower(d.Value(m[qn.ID])))
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// valueSimilarity grades how well a matched value satisfies the predicate
// operand: 1 for equality, 0.8 for a prefix, token Jaccard otherwise.
func valueSimilarity(pred, value string) float64 {
	pred = strings.TrimSpace(pred)
	value = strings.TrimSpace(value)
	if pred == value {
		return 1
	}
	if strings.HasPrefix(value, pred) {
		return 0.8
	}
	pt := index.Tokenize(pred)
	vt := index.Tokenize(value)
	if len(pt) == 0 || len(vt) == 0 {
		return 0
	}
	set := make(map[string]struct{}, len(pt))
	for _, t := range pt {
		set[t] = struct{}{}
	}
	inter := 0
	vset := make(map[string]struct{}, len(vt))
	for _, t := range vt {
		if _, dup := vset[t]; dup {
			continue
		}
		vset[t] = struct{}{}
		if _, ok := set[t]; ok {
			inter++
		}
	}
	union := len(set) + len(vset) - inter
	return float64(inter) / float64(union)
}

// tightness computes 1/(1+slack) where slack sums, over all query edges,
// how many levels beyond a direct child the match stretches.
func (r *Ranker) tightness(q *twig.Query, m join.Match) float64 {
	d := r.ix.Document()
	slack := 0
	for _, qn := range q.Nodes() {
		p := qn.Parent()
		if p == nil {
			continue
		}
		lp := d.Region(m[p.ID]).Level
		lc := d.Region(m[qn.ID]).Level
		slack += int(lc - lp - 1)
	}
	return 1 / (1 + float64(slack))
}

// idf averages ln(1 + N/df) over the query's predicate tokens and squashes
// to [0,1).  Queries without predicates get 0 (neutral).
func (r *Ranker) idf(q *twig.Query) float64 {
	n := float64(r.ix.ValuedNodes())
	var total float64
	var count int
	for _, qn := range q.Nodes() {
		if qn.Pred.Op == twig.NoPred {
			continue
		}
		for _, tok := range index.Tokenize(qn.Pred.Value) {
			df := float64(r.ix.DF(tok))
			total += math.Log1p(n / (1 + df))
			count++
		}
	}
	if count == 0 {
		return 0
	}
	avg := total / float64(count)
	return avg / (1 + avg)
}
