package rank

import (
	"math"
	"testing"

	"lotusx/internal/doc"
	"lotusx/internal/index"
	"lotusx/internal/join"
	"lotusx/internal/twig"
)

const libXML = `<lib>
  <book><title>xml databases</title><author>rare name</author></book>
  <book><title>xml</title><author>common name</author></book>
  <book><part><title>xml databases explained</title></part><author>common name</author></book>
  <book><title>cooking</title><author>common name</author></book>
</lib>`

func setup(t *testing.T) (*index.Index, *Ranker) {
	t.Helper()
	d, err := doc.FromString("test", libXML)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(d)
	return ix, New(ix)
}

func runMatches(t *testing.T, ix *index.Index, qs string) (*twig.Query, []join.Match) {
	t.Helper()
	q := twig.MustParse(qs)
	res, err := join.Run(ix, q, join.TwigStack, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return q, res.Matches
}

func TestExactValueOutranksPartial(t *testing.T) {
	ix, r := setup(t)
	q, ms := runMatches(t, ix, `//book[.//title contains "xml"]`)
	if len(ms) != 3 {
		t.Fatalf("matches = %d, want 3", len(ms))
	}
	scored := r.Rank(q, ms, 0)
	d := ix.Document()
	// The exact-equal title "xml" should rank first (similarity 1.0 beats
	// prefix 0.8 and token overlap).
	top := d.Value(scored[0].Match[1]) // node 1 = title
	if top != "xml" {
		t.Fatalf("top title = %q, want \"xml\"", top)
	}
	if scored[0].Content != 1.0 {
		t.Errorf("top content = %f, want 1.0", scored[0].Content)
	}
}

func TestTightnessPrefersDirectChildren(t *testing.T) {
	ix, r := setup(t)
	q, ms := runMatches(t, ix, `//book[.//title contains "databases"]`)
	if len(ms) != 2 {
		t.Fatalf("matches = %d, want 2", len(ms))
	}
	scored := r.Rank(q, ms, 0)
	// "xml databases" is a direct child title (slack 0); the part/title has
	// slack 1, and both have the same content component? Both contain
	// "databases": "xml databases" similarity vs "xml databases explained":
	// Jaccard 1/2 vs 1/3... content differs too, but both favour the direct
	// child. Verify order and tightness values.
	if scored[0].Tightness != 1.0 {
		t.Errorf("winner tightness = %f, want 1.0", scored[0].Tightness)
	}
	if scored[1].Tightness != 0.5 {
		t.Errorf("runner-up tightness = %f, want 0.5", scored[1].Tightness)
	}
	if scored[0].Score <= scored[1].Score {
		t.Error("scores not strictly ordered")
	}
}

func TestIDFRewardsRareTerms(t *testing.T) {
	_, r := setup(t)
	qRare := twig.MustParse(`//book[author contains "rare"]`)
	qCommon := twig.MustParse(`//book[author contains "common"]`)
	if r.idf(qRare) <= r.idf(qCommon) {
		t.Errorf("idf(rare)=%f should exceed idf(common)=%f", r.idf(qRare), r.idf(qCommon))
	}
}

func TestPredicateFreeQueryNeutralScore(t *testing.T) {
	ix, r := setup(t)
	q, ms := runMatches(t, ix, `//book/author`)
	scored := r.Rank(q, ms, 0)
	for _, s := range scored {
		if s.Content != 0 || s.IDF != 0 {
			t.Errorf("neutral components expected, got %+v", s)
		}
		if s.Score != s.Tightness {
			t.Errorf("score should equal tightness for predicate-free queries")
		}
	}
	// Deterministic: equal scores ordered by document order.
	for i := 1; i < len(scored); i++ {
		if scored[i-1].Score == scored[i].Score &&
			scored[i-1].Match[1] > scored[i].Match[1] {
			t.Error("tie not broken by document order")
		}
	}
}

func TestRankTopK(t *testing.T) {
	ix, r := setup(t)
	q, ms := runMatches(t, ix, `//book`)
	scored := r.Rank(q, ms, 2)
	if len(scored) != 2 {
		t.Fatalf("topk = %d", len(scored))
	}
	all := r.Rank(q, ms, 0)
	if len(all) != 4 {
		t.Fatalf("all = %d", len(all))
	}
	if all[0].Score != scored[0].Score || all[1].Score != scored[1].Score {
		t.Error("top-k disagrees with full ranking")
	}
}

func TestValueSimilarity(t *testing.T) {
	cases := []struct {
		pred, val string
		want      float64
	}{
		{"xml", "xml", 1},
		{"xml", "xml databases", 0.8},
		{"databases xml", "xml databases", 1.0 / 1.0}, // same token set -> jaccard 1? inter=2 union=2
		{"xml", "cooking", 0},
		{"", "", 1},
		{"a b", "b c", 1.0 / 3.0},
	}
	for _, c := range cases {
		got := valueSimilarity(c.pred, c.val)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("valueSimilarity(%q,%q) = %f, want %f", c.pred, c.val, got, c.want)
		}
	}
}

func TestScoreBreakdownComposition(t *testing.T) {
	ix, r := setup(t)
	q, ms := runMatches(t, ix, `//book[.//title contains "xml"]`)
	for _, m := range ms {
		s := r.Score(q, m)
		want := (1 + s.Content) * s.Tightness * (1 + s.IDF)
		if math.Abs(s.Score-want) > 1e-12 {
			t.Errorf("score %f does not equal composition %f", s.Score, want)
		}
		if s.Content < 0 || s.Content > 1 || s.Tightness <= 0 || s.Tightness > 1 || s.IDF < 0 || s.IDF >= 1 {
			t.Errorf("component out of range: %+v", s)
		}
	}
}
