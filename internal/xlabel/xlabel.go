// Package xlabel implements the extended Dewey labeling scheme of TJFast
// (Lu, Ling, Chan, Chen, VLDB 2005) — the "position-aware" labels behind
// LotusX: a single number sequence per node from which the *entire
// root-to-node tag path* can be decoded, without touching any ancestor.
//
// The scheme needs, for every element tag t, the alphabet CT(t) of tags that
// can occur as children of t.  The original derives CT from the DTD; absent
// one, this package derives it from the document itself (DESIGN.md records
// the substitution — the derived alphabet is exactly the DTD restriction the
// data exercises).
//
// Encoding: a node whose parent is tagged t, with n = |CT(t)|, gets the
// smallest component x greater than its previous sibling's component (or -1)
// such that x mod n equals the index of the node's tag in CT(t).  Components
// therefore increase strictly along siblings, so labels compare in document
// order lexicographically, and a label's proper prefixes are exactly its
// ancestors' labels — the Dewey properties — while (x mod n) walks a finite
// state transducer that spells out the tag path.
package xlabel

import (
	"fmt"
	"sort"

	"lotusx/internal/doc"
)

// Label is an extended Dewey code.  The root element's label is empty; its
// tag is the transducer's start state.
type Label []int64

// Compare orders labels in document order (ancestors before descendants).
func (a Label) Compare(b Label) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// IsAncestor reports whether a is a proper prefix of d.
func (a Label) IsAncestor(d Label) bool {
	if len(a) >= len(d) {
		return false
	}
	for i := range a {
		if a[i] != d[i] {
			return false
		}
	}
	return true
}

// Transducer is the finite state machine that decodes tag paths from
// labels: state = current tag, transition = component mod alphabet size.
type Transducer struct {
	root      doc.TagID
	alphabets [][]doc.TagID       // per parent tag: sorted child tags
	position  []map[doc.TagID]int // per parent tag: child tag -> alphabet index
}

// BuildTransducer derives the child-tag alphabets from d.
func BuildTransducer(d *doc.Document) *Transducer {
	ntags := d.Tags().Len()
	sets := make([]map[doc.TagID]struct{}, ntags)
	for i := 0; i < d.Len(); i++ {
		n := doc.NodeID(i)
		p := d.Parent(n)
		if p == doc.None {
			continue
		}
		pt := d.Tag(p)
		if sets[pt] == nil {
			sets[pt] = make(map[doc.TagID]struct{})
		}
		sets[pt][d.Tag(n)] = struct{}{}
	}
	tr := &Transducer{
		root:      d.Tag(d.Root()),
		alphabets: make([][]doc.TagID, ntags),
		position:  make([]map[doc.TagID]int, ntags),
	}
	for t := range sets {
		if sets[t] == nil {
			continue
		}
		alpha := make([]doc.TagID, 0, len(sets[t]))
		for ct := range sets[t] {
			alpha = append(alpha, ct)
		}
		sort.Slice(alpha, func(i, j int) bool { return alpha[i] < alpha[j] })
		tr.alphabets[t] = alpha
		pos := make(map[doc.TagID]int, len(alpha))
		for i, ct := range alpha {
			pos[ct] = i
		}
		tr.position[t] = pos
	}
	return tr
}

// Root returns the transducer's start state (the document root's tag).
func (tr *Transducer) Root() doc.TagID { return tr.root }

// Alphabet returns the child-tag alphabet of tag, in index order.
func (tr *Transducer) Alphabet(tag doc.TagID) []doc.TagID { return tr.alphabets[tag] }

// DecodeTags returns the tag path spelled by label, starting with the root
// tag; len(result) == len(label) + 1.  An error means the label was not
// produced for this document class.
func (tr *Transducer) DecodeTags(label Label) ([]doc.TagID, error) {
	out := make([]doc.TagID, 0, len(label)+1)
	cur := tr.root
	out = append(out, cur)
	for depth, x := range label {
		alpha := tr.alphabets[cur]
		if len(alpha) == 0 {
			return nil, fmt.Errorf("xlabel: tag %d has no children at depth %d", cur, depth)
		}
		if x < 0 {
			return nil, fmt.Errorf("xlabel: negative component at depth %d", depth)
		}
		cur = alpha[int(x%int64(len(alpha)))]
		out = append(out, cur)
	}
	return out, nil
}

// Arena stores the labels of every node of one document, flat.
type Arena struct {
	offs   []int32
	digits []int64
}

// At returns node i's label; the result aliases the arena.
func (a *Arena) At(i doc.NodeID) Label { return Label(a.digits[a.offs[i]:a.offs[i+1]]) }

// Len returns the number of labeled nodes.
func (a *Arena) Len() int { return len(a.offs) - 1 }

// Encode assigns extended Dewey labels to every node of d under tr, in one
// document-order pass.
func Encode(d *doc.Document, tr *Transducer) *Arena {
	a := &Arena{offs: make([]int32, 1, d.Len()+1)}
	// Node IDs are preorder, so a parent's label is already in the arena
	// when its children arrive; lastComp remembers, per open parent, the
	// component handed to its most recent child.
	lastComp := make(map[doc.NodeID]int64)
	for i := 0; i < d.Len(); i++ {
		n := doc.NodeID(i)
		p := d.Parent(n)
		if p == doc.None {
			a.offs = append(a.offs, int32(len(a.digits))) // empty root label
			continue
		}
		parentLabel := a.At(p)
		alpha := tr.alphabets[d.Tag(p)]
		idx := int64(tr.position[d.Tag(p)][d.Tag(n)])
		n64 := int64(len(alpha))

		prev, ok := lastComp[p]
		if !ok {
			prev = -1
		}
		// Smallest x > prev with x ≡ idx (mod n).
		x := (prev/n64)*n64 + idx
		for x <= prev {
			x += n64
		}
		lastComp[p] = x

		a.digits = append(a.digits, parentLabel...)
		a.digits = append(a.digits, x)
		a.offs = append(a.offs, int32(len(a.digits)))
	}
	return a
}
