package xlabel

import (
	"math/rand"
	"strings"
	"testing"

	"lotusx/internal/doc"
)

const bibXML = `<dblp>
  <article key="a1">
    <author>Jiaheng Lu</author>
    <title>Holistic Twig Joins</title>
  </article>
  <article key="a2">
    <author>Chunbin Lin</author>
    <author>Jiaheng Lu</author>
    <title>LotusX</title>
  </article>
</dblp>`

func mustEncode(t *testing.T, src string) (*doc.Document, *Transducer, *Arena) {
	t.Helper()
	d, err := doc.FromString("test", src)
	if err != nil {
		t.Fatal(err)
	}
	tr := BuildTransducer(d)
	return d, tr, Encode(d, tr)
}

// tagPath walks parent pointers — the oracle DecodeTags must match.
func tagPath(d *doc.Document, n doc.NodeID) []doc.TagID {
	var rev []doc.TagID
	for cur := n; cur != doc.None; cur = d.Parent(cur) {
		rev = append(rev, d.Tag(cur))
	}
	out := make([]doc.TagID, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

func TestDecodeRecoversEveryTagPath(t *testing.T) {
	d, tr, arena := mustEncode(t, bibXML)
	for i := 0; i < d.Len(); i++ {
		n := doc.NodeID(i)
		got, err := tr.DecodeTags(arena.At(n))
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		want := tagPath(d, n)
		if len(got) != len(want) {
			t.Fatalf("node %d: decoded %d tags, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("node %d: tag path differs at %d: %s vs %s",
					i, j, d.Tags().Name(got[j]), d.Tags().Name(want[j]))
			}
		}
	}
}

func TestLabelsOrderAsDocumentOrder(t *testing.T) {
	d, _, arena := mustEncode(t, bibXML)
	for i := 1; i < d.Len(); i++ {
		if arena.At(doc.NodeID(i-1)).Compare(arena.At(doc.NodeID(i))) >= 0 {
			t.Fatalf("labels of nodes %d,%d not in document order", i-1, i)
		}
	}
}

func TestPrefixIsAncestor(t *testing.T) {
	d, _, arena := mustEncode(t, bibXML)
	for i := 0; i < d.Len(); i++ {
		for j := 0; j < d.Len(); j++ {
			if i == j {
				continue
			}
			a, b := doc.NodeID(i), doc.NodeID(j)
			want := d.IsAncestor(a, b)
			if got := arena.At(a).IsAncestor(arena.At(b)); got != want {
				t.Fatalf("IsAncestor(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestTransducerAlphabets(t *testing.T) {
	d, tr, _ := mustEncode(t, bibXML)
	tags := d.Tags()
	if tr.Root() != tags.ID("dblp") {
		t.Fatalf("root state = %v", tr.Root())
	}
	article := tr.Alphabet(tags.ID("article"))
	if len(article) != 3 { // @key, author, title
		t.Fatalf("article alphabet = %v", article)
	}
	if got := tr.Alphabet(tags.ID("author")); len(got) != 0 {
		t.Fatalf("leaf tag alphabet = %v", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	d, tr, _ := mustEncode(t, bibXML)
	tags := d.Tags()
	_ = tags
	if _, err := tr.DecodeTags(Label{0, 0, 0, 0, 0}); err == nil {
		t.Error("over-deep label should fail to decode")
	}
	if _, err := tr.DecodeTags(Label{-1}); err == nil {
		t.Error("negative component should fail")
	}
	if got, err := tr.DecodeTags(nil); err != nil || len(got) != 1 {
		t.Errorf("empty label should decode to just the root: %v %v", got, err)
	}
}

func TestLabelCompare(t *testing.T) {
	cases := []struct {
		a, b Label
		want int
	}{
		{Label{}, Label{0}, -1},
		{Label{0}, Label{}, 1},
		{Label{1, 2}, Label{1, 2}, 0},
		{Label{1, 2}, Label{1, 3}, -1},
		{Label{2}, Label{1, 9}, 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRandomDocumentsDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tags := []string{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 20; trial++ {
		var b strings.Builder
		var open []string
		b.WriteString("<r>")
		for i := 0; i < 120; i++ {
			if len(open) > 0 && (rng.Intn(3) == 0 || len(open) > 7) {
				b.WriteString("</" + open[len(open)-1] + ">")
				open = open[:len(open)-1]
				continue
			}
			tag := tags[rng.Intn(len(tags))]
			b.WriteString("<" + tag + ">")
			open = append(open, tag)
		}
		for len(open) > 0 {
			b.WriteString("</" + open[len(open)-1] + ">")
			open = open[:len(open)-1]
		}
		b.WriteString("</r>")

		d, tr, arena := mustEncode(t, b.String())
		for i := 0; i < d.Len(); i++ {
			n := doc.NodeID(i)
			got, err := tr.DecodeTags(arena.At(n))
			if err != nil {
				t.Fatalf("trial %d node %d: %v", trial, i, err)
			}
			want := tagPath(d, n)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("trial %d node %d: decode mismatch", trial, i)
				}
			}
		}
	}
}

func TestSiblingComponentsStrictlyIncrease(t *testing.T) {
	d, _, arena := mustEncode(t, bibXML)
	for i := 0; i < d.Len(); i++ {
		n := doc.NodeID(i)
		var prev int64 = -1
		for c := d.FirstChild(n); c != doc.None; c = d.NextSibling(c) {
			l := arena.At(c)
			x := l[len(l)-1]
			if x <= prev {
				t.Fatalf("sibling components not increasing under node %d", i)
			}
			prev = x
		}
	}
}
