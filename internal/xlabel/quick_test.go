package xlabel

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"lotusx/internal/doc"
)

// randomTree is a quick-generatable random document for labeling tests.
type randomTree struct {
	src string
}

// Generate implements quick.Generator.
func (randomTree) Generate(rng *rand.Rand, size int) reflect.Value {
	tags := []string{"a", "b", "c", "d", "e", "f"}
	var b strings.Builder
	var open []string
	b.WriteString("<root>")
	steps := 5 + rng.Intn(size%60+20)
	for i := 0; i < steps; i++ {
		if len(open) > 0 && (rng.Intn(3) == 0 || len(open) > 9) {
			b.WriteString("</" + open[len(open)-1] + ">")
			open = open[:len(open)-1]
			continue
		}
		tag := tags[rng.Intn(len(tags))]
		b.WriteString("<" + tag + ">")
		open = append(open, tag)
	}
	for len(open) > 0 {
		b.WriteString("</" + open[len(open)-1] + ">")
		open = open[:len(open)-1]
	}
	b.WriteString("</root>")
	return reflect.ValueOf(randomTree{b.String()})
}

// TestQuickExtendedDeweyProperties checks, over arbitrary trees, the three
// defining properties of extended Dewey: (1) the transducer decodes every
// node's exact tag path, (2) labels sort in document order, (3) label
// prefixing coincides with ancestry.
func TestQuickExtendedDeweyProperties(t *testing.T) {
	f := func(rt randomTree) bool {
		d, err := doc.FromString("gen", rt.src)
		if err != nil {
			return false
		}
		tr := BuildTransducer(d)
		arena := Encode(d, tr)

		for i := 0; i < d.Len(); i++ {
			n := doc.NodeID(i)
			tags, err := tr.DecodeTags(arena.At(n))
			if err != nil {
				return false
			}
			// Compare against the parent-pointer oracle.
			j := len(tags) - 1
			for cur := n; cur != doc.None; cur = d.Parent(cur) {
				if j < 0 || tags[j] != d.Tag(cur) {
					return false
				}
				j--
			}
			if j != -1 {
				return false
			}
			// Document order.
			if i > 0 && arena.At(doc.NodeID(i-1)).Compare(arena.At(n)) >= 0 {
				return false
			}
			// Prefix = ancestry, against a sample of other nodes.
			for k := 0; k < d.Len(); k += 1 + d.Len()/16 {
				m := doc.NodeID(k)
				if m == n {
					continue
				}
				if arena.At(n).IsAncestor(arena.At(m)) != d.IsAncestor(n, m) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
