package faults

import (
	"context"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

func TestNilRegistryNeverFires(t *testing.T) {
	t.Parallel()
	var r *Registry
	if err := r.Fire(context.Background(), "site", "key"); err != nil {
		t.Fatalf("nil registry fired: %v", err)
	}
	rd := strings.NewReader("payload")
	if got := r.Reader("site", "key", rd); got != io.Reader(rd) {
		t.Fatal("nil registry wrapped the reader")
	}
	if n := r.Fired("site"); n != 0 {
		t.Fatalf("Fired = %d", n)
	}
}

func TestEnableDisableFire(t *testing.T) {
	t.Parallel()
	r := New()
	if err := r.Fire(context.Background(), "s", "k"); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
	r.Enable(Injection{Site: "s", Err: errBoom})
	if err := r.Fire(context.Background(), "s", "k"); !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want errBoom", err)
	}
	if n := r.Fired("s"); n != 1 {
		t.Fatalf("Fired = %d, want 1", n)
	}
	r.Disable("s")
	if err := r.Fire(context.Background(), "s", "k"); err != nil {
		t.Fatalf("disabled site fired: %v", err)
	}
}

func TestKeyFilter(t *testing.T) {
	t.Parallel()
	r := New()
	r.Enable(Injection{Site: "s", Keys: []string{"b"}, Err: errBoom})
	if err := r.Fire(context.Background(), "s", "a"); err != nil {
		t.Fatalf("key a fired: %v", err)
	}
	if err := r.Fire(context.Background(), "s", "b"); !errors.Is(err, errBoom) {
		t.Fatalf("key b: err = %v", err)
	}
}

func TestEveryNIsDeterministic(t *testing.T) {
	t.Parallel()
	r := New()
	r.Enable(Injection{Site: "s", EveryN: 3, Err: errBoom})
	var pattern []bool
	for i := 0; i < 9; i++ {
		pattern = append(pattern, r.Fire(context.Background(), "s", "k") != nil)
	}
	want := []bool{false, false, true, false, false, true, false, false, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("call %d fired=%v, want %v (pattern %v)", i+1, pattern[i], want[i], pattern)
		}
	}
	if n := r.Fired("s"); n != 3 {
		t.Fatalf("Fired = %d, want 3", n)
	}
}

func TestTimesBoundsFiring(t *testing.T) {
	t.Parallel()
	r := New()
	r.Enable(Injection{Site: "s", Times: 2, Err: errBoom})
	fired := 0
	for i := 0; i < 5; i++ {
		if r.Fire(context.Background(), "s", "k") != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2", fired)
	}
}

func TestLatencyHonorsContext(t *testing.T) {
	t.Parallel()
	r := New()
	r.Enable(Injection{Site: "s", Latency: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := r.Fire(ctx, "s", "k")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("latency sleep ignored the dying context")
	}
}

func TestHookOverrides(t *testing.T) {
	t.Parallel()
	r := New()
	var gotKey string
	r.Enable(Injection{Site: "s", Err: errBoom, Hook: func(ctx context.Context, key string) error {
		gotKey = key
		return nil
	}})
	if err := r.Fire(context.Background(), "s", "shard-7"); err != nil {
		t.Fatalf("hook result not returned: %v", err)
	}
	if gotKey != "shard-7" {
		t.Fatalf("hook key = %q", gotKey)
	}
}

func TestShortReadTruncates(t *testing.T) {
	t.Parallel()
	r := New()
	r.Enable(Injection{Site: "open", ShortRead: 4})
	data, err := io.ReadAll(r.Reader("open", "f", strings.NewReader("0123456789")))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "0123" {
		t.Fatalf("read %q, want truncation after 4 bytes", data)
	}
	// Unarmed site: identity.
	data, _ = io.ReadAll(r.Reader("other", "f", strings.NewReader("0123456789")))
	if string(data) != "0123456789" {
		t.Fatalf("unarmed reader truncated: %q", data)
	}
}

// TestConcurrentFire hammers one site from many goroutines; run under -race.
// Times must bound total firings exactly even when calls race.
func TestConcurrentFire(t *testing.T) {
	t.Parallel()
	r := New()
	r.Enable(Injection{Site: "s", Times: 50, Err: errBoom})
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if r.Fire(context.Background(), "s", "k") != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 50 {
		t.Fatalf("fired %d, want exactly 50", fired)
	}
	if n := r.Fired("s"); n != 50 {
		t.Fatalf("Fired = %d, want 50", n)
	}
}
