// Package faults provides deterministic, registry-based fault injection for
// tests and benches.  Production code declares named injection sites (a
// string constant plus a per-call key, e.g. the shard being evaluated) and
// consults a Registry at each one; a nil or unarmed registry costs one
// pointer check, so the sites stay in the production build.
//
// Injection is deterministic by construction: firing is driven by per-site
// call counters (EveryN, Times), never by a random source, so a test or
// bench replays the exact same failure sequence on every run.  This replaces
// ad-hoc package-global test hooks — registries are plain values, so two
// parallel tests injecting faults into two corpora never observe each other.
package faults

import (
	"context"
	"io"
	"sync"
	"time"
)

// Injection describes what an armed site does when it fires.
type Injection struct {
	// Site names the injection point (a package-level constant at the site).
	Site string
	// Keys restricts firing to calls whose key is listed; empty matches all
	// keys (for the shard-search site the key is the shard name).
	Keys []string
	// Err is returned from the site when the injection fires.
	Err error
	// Latency delays the site before it returns (and before Err, if set).
	// The sleep is context-aware: a dying caller gets its context error.
	Latency time.Duration
	// ShortRead, for reader sites, truncates the wrapped stream after this
	// many bytes — the torn-file / partial-write failure mode.
	ShortRead int64
	// EveryN fires the injection on every Nth eligible call (counted per
	// site across keys); 0 or 1 fires on every call.
	EveryN int
	// Times stops the injection after it has fired this many times; 0 means
	// unlimited.
	Times int
	// Hook, when non-nil, runs instead of the Latency+Err behavior and its
	// return value is the site's result.  Tests use it to synchronize with a
	// live call (e.g. block a shard until a sibling fails).
	Hook func(ctx context.Context, key string) error
}

// site is one armed injection point with its firing counters.
type site struct {
	mu    sync.Mutex
	inj   Injection
	calls int64 // key-eligible calls seen
	fired int64 // calls the injection actually fired on
}

// take decides, under the site lock, whether this call fires and returns a
// copy of the injection to apply.
func (s *site) take(key string) (Injection, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.inj.Keys) > 0 {
		ok := false
		for _, k := range s.inj.Keys {
			if k == key {
				ok = true
				break
			}
		}
		if !ok {
			return Injection{}, false
		}
	}
	s.calls++
	if n := s.inj.EveryN; n > 1 && s.calls%int64(n) != 0 {
		return Injection{}, false
	}
	if s.inj.Times > 0 && s.fired >= int64(s.inj.Times) {
		return Injection{}, false
	}
	s.fired++
	return s.inj, true
}

// Registry is a set of armed injection points.  The zero value is not
// usable; call New.  A nil *Registry is valid at every call site and never
// fires — production code passes nil (or leaves the config field empty) and
// pays one comparison per site.
type Registry struct {
	mu    sync.RWMutex
	sites map[string]*site
}

// New returns an empty registry with no armed sites.
func New() *Registry {
	return &Registry{sites: make(map[string]*site)}
}

// Enable arms (or re-arms, resetting counters) the injection's Site.
func (r *Registry) Enable(inj Injection) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sites[inj.Site] = &site{inj: inj}
}

// Disable disarms the named site.
func (r *Registry) Disable(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.sites, name)
}

// Reset disarms every site.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sites = make(map[string]*site)
}

// Fired reports how many times the named site's injection has fired.
func (r *Registry) Fired(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	s := r.sites[name]
	r.mu.RUnlock()
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

// lookup returns the armed site, nil when unarmed (or r is nil).
func (r *Registry) lookup(name string) *site {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.sites[name]
}

// Fire consults the named site: it returns nil immediately when the site is
// unarmed or this call does not fire, otherwise it applies the injection —
// Hook verbatim when set, else a context-aware Latency sleep followed by
// returning Err.
func (r *Registry) Fire(ctx context.Context, name, key string) error {
	s := r.lookup(name)
	if s == nil {
		return nil
	}
	inj, ok := s.take(key)
	if !ok {
		return nil
	}
	if inj.Hook != nil {
		return inj.Hook(ctx, key)
	}
	if inj.Latency > 0 {
		t := time.NewTimer(inj.Latency)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
	return inj.Err
}

// Reader wraps rd with the named site's injection: a firing ShortRead
// truncates the stream after that many bytes (an io.EOF mid-payload, the
// shape of a torn write).  Unarmed or non-firing calls return rd unchanged.
func (r *Registry) Reader(name, key string, rd io.Reader) io.Reader {
	s := r.lookup(name)
	if s == nil {
		return rd
	}
	inj, ok := s.take(key)
	if !ok || inj.ShortRead <= 0 {
		return rd
	}
	return io.LimitReader(rd, inj.ShortRead)
}
