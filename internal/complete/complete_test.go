package complete

import (
	"fmt"
	"strings"
	"testing"

	"lotusx/internal/dataguide"
	"lotusx/internal/doc"
	"lotusx/internal/index"
	"lotusx/internal/twig"
)

// The catalog: "price" occurs under item but never under person; "name"
// occurs under both; person names and item names have disjoint values.
const shopXML = `<shop>
  <items>
    <item><name>anvil</name><price>10</price><seller>alice</seller></item>
    <item><name>apple</name><price>2</price><seller>bob</seller></item>
    <item><name>anchor</name><price>50</price><seller>alice</seller></item>
  </items>
  <people>
    <person><name>alice</name><age>30</age></person>
    <person><name>bob</name><age>40</age></person>
  </people>
</shop>`

func mustEngine(t *testing.T, src string) *Engine {
	t.Helper()
	d, err := doc.FromString("test", src)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(d)
	return New(ix, dataguide.Build(d))
}

func texts(cs []Candidate) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Text
	}
	return out
}

func contains(cs []Candidate, text string) bool {
	for _, c := range cs {
		if c.Text == text {
			return true
		}
	}
	return false
}

func TestSuggestRootTags(t *testing.T) {
	e := mustEngine(t, shopXML)
	q := twig.NewQuery("shop") // irrelevant; anchor is NewRoot
	if err := q.Normalize(); err != nil {
		t.Fatal(err)
	}
	// Child axis at the root: only the document root tag.
	got := e.SuggestTags(q, NewRoot, twig.Child, "", 10)
	if len(got) != 1 || got[0].Text != "shop" {
		t.Fatalf("root child suggestions = %v", texts(got))
	}
	// Descendant axis: everything.
	got = e.SuggestTags(q, NewRoot, twig.Descendant, "p", 10)
	if !contains(got, "person") || !contains(got, "price") || !contains(got, "people") {
		t.Fatalf("root descendant p* = %v", texts(got))
	}
}

func TestPositionAwareTagSuggestions(t *testing.T) {
	e := mustEngine(t, shopXML)

	// Under //person, prefix "a" can only be "age" — not "apple"/"anchor"
	// (values) nor attributes elsewhere.
	q := twig.MustParse("//person")
	got := e.SuggestTags(q, q.Root.ID, twig.Child, "a", 10)
	if len(got) != 1 || got[0].Text != "age" {
		t.Fatalf("person/a* = %v, want [age]", texts(got))
	}

	// Under //item, prefix "" suggests children ranked by count.
	q = twig.MustParse("//item")
	got = e.SuggestTags(q, q.Root.ID, twig.Child, "", 10)
	if len(got) != 3 {
		t.Fatalf("item children = %v", texts(got))
	}
	for _, c := range got {
		if c.Count != 3 {
			t.Errorf("item child %q count = %d, want 3", c.Text, c.Count)
		}
	}

	// The naive engine, by contrast, offers position-infeasible tags.
	naive := e.SuggestTagsNaive("p", 10)
	if !contains(naive, "price") || !contains(naive, "person") {
		t.Fatalf("naive p* = %v", texts(naive))
	}
}

func TestPositionBeatsNaiveOnAmbiguousPrefix(t *testing.T) {
	e := mustEngine(t, shopXML)
	// Editing under //person with prefix "n": both engines suggest "name",
	// but under //item with prefix "s" only the positional engine omits
	// infeasible tags like "seller"... actually seller IS under item; use
	// person: "s" under person matches nothing positionally (no s-tag), but
	// naively matches "seller"/"shop".
	q := twig.MustParse("//person")
	got := e.SuggestTags(q, q.Root.ID, twig.Child, "s", 10)
	for _, c := range got {
		if !c.Fuzzy {
			t.Fatalf("person/s* should have no exact candidates, got %v", texts(got))
		}
	}
	naive := e.SuggestTagsNaive("s", 10)
	if !contains(naive, "seller") {
		t.Fatalf("naive s* = %v", texts(naive))
	}
}

func TestSuggestTagsDescendantAxis(t *testing.T) {
	e := mustEngine(t, shopXML)
	q := twig.MustParse("//people")
	got := e.SuggestTags(q, q.Root.ID, twig.Descendant, "", 10)
	// Descendants of people: person, name, age.
	if len(got) != 3 {
		t.Fatalf("people descendants = %v", texts(got))
	}
	if contains(got, "price") {
		t.Fatal("price is not under people")
	}
}

func TestSuggestTagsDeepContext(t *testing.T) {
	e := mustEngine(t, shopXML)
	// The anchor is an inner node of a branching twig: //items/item.
	q := twig.MustParse("//items/item[name]")
	// Anchor at item (ID 0 is items? preorder: items=0, item=1, name=2).
	itemID := 1
	if q.Node(itemID).Tag != "item" {
		t.Fatalf("expected node 1 to be item, got %q", q.Node(itemID).Tag)
	}
	got := e.SuggestTags(q, itemID, twig.Child, "se", 10)
	if len(got) != 1 || got[0].Text != "seller" {
		t.Fatalf("item/se* = %v", texts(got))
	}
}

func TestSuggestTagsFuzzy(t *testing.T) {
	e := mustEngine(t, shopXML)
	q := twig.MustParse("//item")
	got := e.SuggestTags(q, q.Root.ID, twig.Child, "pricce", 10)
	if len(got) != 1 || got[0].Text != "price" || !got[0].Fuzzy {
		t.Fatalf("fuzzy = %+v", got)
	}
	// Hopeless prefixes stay empty.
	if got := e.SuggestTags(q, q.Root.ID, twig.Child, "zzzzz", 10); len(got) != 0 {
		t.Fatalf("zzzzz = %v", texts(got))
	}
}

func TestSuggestTagsInfeasiblePosition(t *testing.T) {
	e := mustEngine(t, shopXML)
	q := twig.MustParse("//person/price") // no such path
	if got := e.SuggestTags(q, 1, twig.Child, "", 10); got != nil {
		t.Fatalf("infeasible position suggested %v", texts(got))
	}
}

func TestSuggestValuesPositionAware(t *testing.T) {
	e := mustEngine(t, shopXML)

	// Values of name under person: alice, bob — not the item names.
	q := twig.MustParse("//person/name")
	nameID := 1
	got := e.SuggestValues(q, nameID, "a", 10)
	if len(got) != 1 || got[0].Text != "alice" {
		t.Fatalf("person/name a* = %v", texts(got))
	}

	// Same tag under item yields item names only.
	q = twig.MustParse("//item/name")
	got = e.SuggestValues(q, 1, "a", 10)
	if len(got) != 3 || contains(got, "alice") {
		t.Fatalf("item/name a* = %v", texts(got))
	}

	// The naive engine mixes both (tag-level).
	naive := e.SuggestValuesNaive("name", "a", 10)
	if len(naive) != 4 {
		t.Fatalf("naive name a* = %v", texts(naive))
	}
}

func TestSuggestValuesEmptyPrefixRanked(t *testing.T) {
	e := mustEngine(t, shopXML)
	q := twig.MustParse("//seller")
	got := e.SuggestValues(q, 0, "", 10)
	if len(got) != 2 || got[0].Text != "alice" || got[0].Count != 2 {
		t.Fatalf("seller values = %+v", got)
	}
}

func TestSuggestValuesInfeasible(t *testing.T) {
	e := mustEngine(t, shopXML)
	q := twig.MustParse("//person/price")
	if got := e.SuggestValues(q, 1, "", 10); got != nil {
		t.Fatalf("infeasible values = %v", texts(got))
	}
}

func TestSuggestValuesNaiveUnknownTag(t *testing.T) {
	e := mustEngine(t, shopXML)
	if got := e.SuggestValuesNaive("nosuch", "", 5); got != nil {
		t.Fatal("unknown tag should yield nil")
	}
	if got := e.SuggestValuesNaive("items", "", 5); got != nil {
		t.Fatal("valueless tag should yield nil")
	}
}

func TestWildcardAnchor(t *testing.T) {
	e := mustEngine(t, shopXML)
	q := twig.MustParse("//*")
	got := e.SuggestTags(q, q.Root.ID, twig.Child, "n", 10)
	if !contains(got, "name") {
		t.Fatalf("wildcard anchor n* = %v", texts(got))
	}
}

func TestEditDistanceAtMost(t *testing.T) {
	cases := []struct {
		a, b string
		max  int
		want bool
	}{
		{"price", "price", 0, true},
		{"price", "pricce", 1, true},
		{"price", "prise", 1, true},
		{"price", "rice", 1, true},
		{"price", "pr", 1, false},
		{"", "", 0, true},
		{"a", "", 1, true},
		{"ab", "", 1, false},
		{"kitten", "sitting", 3, true},
		{"kitten", "sitting", 2, false},
	}
	for _, c := range cases {
		if got := editDistanceAtMost(c.a, c.b, c.max); got != c.want {
			t.Errorf("editDistanceAtMost(%q,%q,%d) = %v, want %v", c.a, c.b, c.max, got, c.want)
		}
	}
}

func TestSuggestValuesTruncatedFallsBackToTagTrie(t *testing.T) {
	// More distinct values on one path than the DataGuide samples: the
	// engine must fall back to the tag-level value trie and still complete
	// values the sample dropped.
	var b strings.Builder
	b.WriteString("<cat>")
	for i := 0; i < 80; i++ {
		fmt.Fprintf(&b, "<prod><label>val%03d</label></prod>", i)
	}
	b.WriteString("</cat>")
	e := mustEngine(t, b.String())
	q := twig.MustParse("//prod/label")
	got := e.SuggestValues(q, 1, "val07", 20)
	// val070..val079: all ten must be reachable even though the path sample
	// holds only the first 64 distinct values.
	if len(got) != 10 {
		t.Fatalf("truncated-path completion = %d candidates, want 10: %v", len(got), texts(got))
	}
}

func TestSuggestValuesTruncatedDedupsSampleAndTrie(t *testing.T) {
	var b strings.Builder
	b.WriteString("<cat>")
	for i := 0; i < 70; i++ {
		fmt.Fprintf(&b, "<prod><label>u%02d</label></prod>", i)
	}
	// One heavy value inside the sampled range.
	for i := 0; i < 5; i++ {
		b.WriteString("<prod><label>u00</label></prod>")
	}
	b.WriteString("</cat>")
	e := mustEngine(t, b.String())
	q := twig.MustParse("//prod/label")
	got := e.SuggestValues(q, 1, "u0", 30)
	seen := map[string]int{}
	for _, c := range got {
		seen[c.Text]++
		if seen[c.Text] > 1 {
			t.Fatalf("duplicate candidate %q", c.Text)
		}
	}
	if got[0].Text != "u00" {
		t.Fatalf("heavy value should rank first: %v", texts(got))
	}
}

func TestExplainTag(t *testing.T) {
	e := mustEngine(t, shopXML)

	// "name" under //shop via descendant: two paths, item first (3 > 2).
	q := twig.MustParse("//shop")
	occs := e.ExplainTag(q, q.Root.ID, twig.Descendant, "name", 0)
	if len(occs) != 2 {
		t.Fatalf("occurrences = %+v", occs)
	}
	if occs[0].Path != "/shop/items/item/name" || occs[0].Count != 3 {
		t.Fatalf("top occurrence = %+v", occs[0])
	}
	if occs[1].Path != "/shop/people/person/name" || occs[1].Count != 2 {
		t.Fatalf("second occurrence = %+v", occs[1])
	}

	// Child axis restricts to direct children.
	q = twig.MustParse("//item")
	occs = e.ExplainTag(q, q.Root.ID, twig.Child, "name", 0)
	if len(occs) != 1 || occs[0].Count != 3 {
		t.Fatalf("item/name = %+v", occs)
	}

	// max caps the list.
	q = twig.MustParse("//shop")
	if got := e.ExplainTag(q, q.Root.ID, twig.Descendant, "name", 1); len(got) != 1 {
		t.Fatalf("max=1 returned %d", len(got))
	}
}

func TestExplainTagRoot(t *testing.T) {
	e := mustEngine(t, shopXML)
	occs := e.ExplainTag(nil, NewRoot, twig.Child, "shop", 0)
	if len(occs) != 1 || occs[0].Path != "/shop" {
		t.Fatalf("root explain = %+v", occs)
	}
	occs = e.ExplainTag(nil, NewRoot, twig.Descendant, "person", 0)
	if len(occs) != 1 || occs[0].Path != "/shop/people/person" {
		t.Fatalf("descendant explain = %+v", occs)
	}
	if got := e.ExplainTag(nil, NewRoot, twig.Child, "nosuch", 0); got != nil {
		t.Fatal("unknown tag should explain to nil")
	}
}

func TestExplainTagInfeasible(t *testing.T) {
	e := mustEngine(t, shopXML)
	q := twig.MustParse("//person")
	if got := e.ExplainTag(q, q.Root.ID, twig.Child, "price", 0); len(got) != 0 {
		t.Fatalf("price under person should not occur: %+v", got)
	}
}
