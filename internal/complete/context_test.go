package complete

import (
	"context"
	"errors"
	"testing"

	"lotusx/internal/twig"
)

func TestContextEntryPoints(t *testing.T) {
	e := mustEngine(t, shopXML)
	q := twig.MustParse("//item")
	focus := q.OutputNode().ID

	bg := context.Background()
	cands, err := e.SuggestTagsContext(bg, q, focus, twig.Child, "n", 10)
	if err != nil || len(cands) == 0 {
		t.Fatalf("SuggestTagsContext = %v, %v", cands, err)
	}
	want := e.SuggestTags(q, focus, twig.Child, "n", 10)
	if len(cands) != len(want) || cands[0].Text != want[0].Text {
		t.Fatalf("context variant diverges: %v vs %v", cands, want)
	}

	dead, cancel := context.WithCancel(bg)
	cancel()
	if _, err := e.SuggestTagsContext(dead, q, focus, twig.Child, "a", 10); !errors.Is(err, context.Canceled) {
		t.Errorf("SuggestTagsContext on dead ctx: err = %v", err)
	}
	if _, err := e.SuggestValuesContext(dead, q, focus, "", 10); !errors.Is(err, context.Canceled) {
		t.Errorf("SuggestValuesContext on dead ctx: err = %v", err)
	}
	if _, err := e.ExplainTagContext(dead, q, focus, twig.Child, "name", 5); !errors.Is(err, context.Canceled) {
		t.Errorf("ExplainTagContext on dead ctx: err = %v", err)
	}
}
