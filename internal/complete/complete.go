// Package complete implements LotusX's position-aware auto-completion, the
// system's headline feature: as the user grows a twig query node by node,
// the engine proposes — for the specific position being edited — the tags
// and text values that actually occur there in the data, ranked by
// positional frequency, with fuzzy fallback for typos.
//
// Position-awareness comes from the DataGuide: the chain of (axis, tag)
// constraints from the twig root to the edited position selects a set of
// guide nodes (the position's contexts), and candidates are drawn only from
// what occurs under those contexts.  The package also exposes the naive
// baseline (global tries, no position filter) that experiments E5/E6
// compare against.
package complete

import (
	"context"
	"sort"
	"strings"

	"lotusx/internal/dataguide"
	"lotusx/internal/doc"
	"lotusx/internal/index"
	"lotusx/internal/obs"
	"lotusx/internal/twig"
)

// checkEvery is how many scanned candidates pass between context polls in
// the context-aware entry points.
const checkEvery = 512

// canceller polls a context sparsely during candidate scans.  A nil
// canceller (the context-free entry points) never cancels.
type canceller struct {
	ctx context.Context
	n   int
	err error
}

// ok reports whether the scan may continue; once false, err is sticky.
func (c *canceller) ok() bool {
	if c == nil {
		return true
	}
	if c.err != nil {
		return false
	}
	c.n++
	if c.n < checkEvery {
		return true
	}
	c.n = 0
	if err := c.ctx.Err(); err != nil {
		c.err = err
		return false
	}
	return true
}

// fail returns the context error observed during a scan, if any.
func (c *canceller) fail() error {
	if c == nil {
		return nil
	}
	return c.err
}

// Kind distinguishes candidate types.
type Kind uint8

const (
	// TagCandidate proposes an element or attribute tag.
	TagCandidate Kind = iota
	// ValueCandidate proposes a text value.
	ValueCandidate
)

// Candidate is one ranked suggestion.
type Candidate struct {
	Text string
	// Count is the candidate's occurrence count at the suggested position
	// (or globally, for the naive engine).
	Count int64
	Kind  Kind
	// Fuzzy marks candidates found by edit-distance fallback rather than
	// exact prefix match.
	Fuzzy bool
}

// NewRoot is the anchor value meaning "the user is creating the query's
// root node".
const NewRoot = -1

// Engine answers completion requests over one indexed document.
type Engine struct {
	ix    *index.Index
	guide *dataguide.Guide
}

// New returns an Engine over the given index and guide.
func New(ix *index.Index, guide *dataguide.Guide) *Engine {
	return &Engine{ix: ix, guide: guide}
}

// pathSteps converts the root-to-anchor chain of the partial twig into
// DataGuide steps.
func pathSteps(q *twig.Query, anchorID int) []dataguide.Step {
	var chain []*twig.Node
	for n := q.Node(anchorID); n != nil; n = n.Parent() {
		chain = append(chain, n)
	}
	steps := make([]dataguide.Step, 0, len(chain))
	for i := len(chain) - 1; i >= 0; i-- {
		steps = append(steps, dataguide.Step{Axis: chain[i].Axis, Tag: chain[i].Tag})
	}
	return steps
}

// AnchorChain renders the root-to-anchor (axis, tag) chain of the partial
// twig as a canonical string — the exact inputs pathSteps derives the
// position's contexts from, and the only part of q that positional
// completion reads (value completion additionally reads the anchor's own
// tag/wildcard flag, which is the chain's last step).  Two queries with the
// same chain therefore complete identically, which is what makes the string
// usable as a cache-key component (internal/cache).  anchorID == NewRoot
// (or a nil q) renders the empty chain.
func AnchorChain(q *twig.Query, anchorID int) string {
	if q == nil || anchorID == NewRoot {
		return "^"
	}
	var b strings.Builder
	b.WriteByte('^')
	for _, s := range pathSteps(q, anchorID) {
		if s.Axis == twig.Descendant {
			b.WriteString("//")
		} else {
			b.WriteByte('/')
		}
		b.WriteString(s.Tag)
	}
	return b.String()
}

// SuggestTags proposes tags for a new node attached under the twig node
// anchorID via axis, matching prefix, at most k, ranked by how often the tag
// occurs at that position.  anchorID == NewRoot proposes tags for the query
// root itself.  When no feasible tag matches the prefix exactly, candidates
// within edit distance 1 are returned with Fuzzy set.
func (e *Engine) SuggestTags(q *twig.Query, anchorID int, axis twig.Axis, prefix string, k int) []Candidate {
	out, _ := e.suggestTags(nil, q, anchorID, axis, prefix, k)
	return out
}

// SuggestTagsContext is SuggestTags with cooperative cancellation: the scan
// over feasible tags polls ctx and stops with its error once the request is
// cancelled or past its deadline.
func (e *Engine) SuggestTagsContext(ctx context.Context, q *twig.Query, anchorID int, axis twig.Axis, prefix string, k int) ([]Candidate, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := obs.StartLeaf(ctx, "complete:tags")
	out, err := e.suggestTags(&canceller{ctx: ctx}, q, anchorID, axis, prefix, k)
	sp.SetInt("candidates", len(out))
	sp.SetErr(err)
	sp.End()
	return out, err
}

func (e *Engine) suggestTags(c *canceller, q *twig.Query, anchorID int, axis twig.Axis, prefix string, k int) ([]Candidate, error) {
	feasible := e.feasibleTags(q, anchorID, axis)
	if len(feasible) == 0 {
		return nil, nil
	}
	out := filterTagCandidates(c, e.ix.Document().Tags(), feasible, prefix, k)
	if len(out) == 0 && prefix != "" && c.fail() == nil {
		out = e.fuzzyTagCandidates(c, feasible, prefix, k)
	}
	if err := c.fail(); err != nil {
		return nil, err
	}
	return out, nil
}

// feasibleTags computes the position-feasible tag set with occurrence
// counts.
func (e *Engine) feasibleTags(q *twig.Query, anchorID int, axis twig.Axis) map[doc.TagID]int {
	if anchorID == NewRoot {
		tags := make(map[doc.TagID]int)
		if axis == twig.Child {
			root := e.guide.Root()
			tags[root.Tag] = root.Count
			return tags
		}
		root := e.guide.Root()
		tags[root.Tag] = root.Count
		for t, c := range root.SubtreeTagCounts() {
			tags[t] += c
		}
		return tags
	}
	contexts := e.guide.FindContext(pathSteps(q, anchorID))
	if len(contexts) == 0 {
		return nil
	}
	return e.guide.CandidateTags(contexts, axis)
}

func filterTagCandidates(c *canceller, dict *doc.TagDict, feasible map[doc.TagID]int, prefix string, k int) []Candidate {
	lower := strings.ToLower(prefix)
	var out []Candidate
	for tag, count := range feasible {
		if !c.ok() {
			break
		}
		name := dict.Name(tag)
		if lower != "" && !strings.HasPrefix(strings.ToLower(name), lower) {
			continue
		}
		out = append(out, Candidate{Text: name, Count: int64(count), Kind: TagCandidate})
	}
	sortCandidates(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// fuzzyTagCandidates matches the prefix against feasible tag names with one
// edit of slack.
func (e *Engine) fuzzyTagCandidates(c *canceller, feasible map[doc.TagID]int, prefix string, k int) []Candidate {
	dict := e.ix.Document().Tags()
	lower := strings.ToLower(prefix)
	var out []Candidate
	for tag, count := range feasible {
		if !c.ok() {
			break
		}
		name := dict.Name(tag)
		ln := strings.ToLower(name)
		if len(ln) > len(lower) {
			ln = ln[:len(lower)+1] // prefix distance: compare against a same-ish-length prefix
		}
		if editDistanceAtMost(ln, lower, 1) {
			out = append(out, Candidate{Text: name, Count: int64(count), Kind: TagCandidate, Fuzzy: true})
		}
	}
	sortCandidates(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// SuggestValues proposes text values for the twig node nodeID, matching
// prefix, at most k, ranked by positional frequency.  When the position's
// value sample was truncated (free-text paths), it falls back to the node
// tag's global value trie, degrading gracefully from path-level to
// tag-level completion.
func (e *Engine) SuggestValues(q *twig.Query, nodeID int, prefix string, k int) []Candidate {
	out, _ := e.suggestValues(nil, q, nodeID, prefix, k)
	return out
}

// SuggestValuesContext is SuggestValues with cooperative cancellation,
// polling ctx during the candidate-value scan.
func (e *Engine) SuggestValuesContext(ctx context.Context, q *twig.Query, nodeID int, prefix string, k int) ([]Candidate, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := obs.StartLeaf(ctx, "complete:values")
	out, err := e.suggestValues(&canceller{ctx: ctx}, q, nodeID, prefix, k)
	sp.SetInt("candidates", len(out))
	sp.SetErr(err)
	sp.End()
	return out, err
}

func (e *Engine) suggestValues(c *canceller, q *twig.Query, nodeID int, prefix string, k int) ([]Candidate, error) {
	contexts := e.guide.FindContext(pathSteps(q, nodeID))
	if len(contexts) == 0 {
		return nil, nil
	}
	lower := strings.ToLower(prefix)
	var out []Candidate
	for _, vc := range e.guide.CandidateValues(contexts) {
		if !c.ok() {
			return nil, c.fail()
		}
		if lower != "" && !strings.HasPrefix(vc.Value, lower) {
			continue
		}
		out = append(out, Candidate{Text: vc.Value, Count: int64(vc.Count), Kind: ValueCandidate})
	}
	truncated := false
	for _, gn := range contexts {
		if gn.ValuesTruncated() {
			truncated = true
			break
		}
	}
	if truncated && len(out) < k {
		out = e.mergeTagLevelValues(q, nodeID, lower, k, out)
	}
	sortCandidates(out)
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// mergeTagLevelValues adds tag-level trie completions not already present.
func (e *Engine) mergeTagLevelValues(q *twig.Query, nodeID int, lower string, k int, out []Candidate) []Candidate {
	qn := q.Node(nodeID)
	if qn.IsWildcard() {
		return out
	}
	tag := e.ix.Document().Tags().ID(qn.Tag)
	vt := e.ix.ValueTrie(tag)
	if vt == nil {
		return out
	}
	seen := make(map[string]struct{}, len(out))
	for _, c := range out {
		seen[c.Text] = struct{}{}
	}
	for _, entry := range vt.Complete(lower, k) {
		if _, dup := seen[entry.Word]; dup {
			continue
		}
		out = append(out, Candidate{Text: entry.Word, Count: entry.Weight, Kind: ValueCandidate})
	}
	return out
}

// Occurrence explains where a suggested tag occurs relative to the edited
// position: one label path plus its count.
type Occurrence struct {
	Path  string
	Count int
}

// ExplainTag reports the label paths at which tag occurs under the given
// position — what the GUI shows when the user hovers a candidate ("author:
// 608× at /dblp/inproceedings/author, ...").  Paths come back most frequent
// first, capped at max (0 means all).
func (e *Engine) ExplainTag(q *twig.Query, anchorID int, axis twig.Axis, tag string, max int) []Occurrence {
	occs, _ := e.explainTag(nil, q, anchorID, axis, tag, max)
	return occs
}

// ExplainTagContext is ExplainTag with cooperative cancellation, polling
// ctx during the DataGuide subtree walks.
func (e *Engine) ExplainTagContext(ctx context.Context, q *twig.Query, anchorID int, axis twig.Axis, tag string, max int) ([]Occurrence, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := obs.StartLeaf(ctx, "complete:explain")
	out, err := e.explainTag(&canceller{ctx: ctx}, q, anchorID, axis, tag, max)
	sp.SetInt("paths", len(out))
	sp.SetErr(err)
	sp.End()
	return out, err
}

func (e *Engine) explainTag(c *canceller, q *twig.Query, anchorID int, axis twig.Axis, tag string, max int) ([]Occurrence, error) {
	tagID := e.ix.Document().Tags().ID(tag)
	if tagID == doc.NoTag {
		return nil, nil
	}
	var occs []Occurrence
	tags := e.ix.Document().Tags()
	seen := make(map[*dataguide.Node]struct{})
	add := func(gn *dataguide.Node) {
		if gn.Tag != tagID {
			return
		}
		if _, dup := seen[gn]; dup {
			return
		}
		seen[gn] = struct{}{}
		occs = append(occs, Occurrence{Path: gn.Path(tags), Count: gn.Count})
	}
	walkSubtree := func(ctx *dataguide.Node) {
		var walk func(n *dataguide.Node)
		walk = func(n *dataguide.Node) {
			if !c.ok() {
				return
			}
			for _, ch := range n.Children {
				add(ch)
				walk(ch)
			}
		}
		walk(ctx)
	}

	if anchorID == NewRoot {
		// A new query root: Child anchors at the document root; Descendant
		// matches the root element or anything below it.
		add(e.guide.Root())
		if axis == twig.Descendant {
			walkSubtree(e.guide.Root())
		}
	} else {
		for _, gctx := range e.guide.FindContext(pathSteps(q, anchorID)) {
			switch axis {
			case twig.Child:
				if child := gctx.Children[tagID]; child != nil {
					add(child)
				}
			case twig.Descendant:
				walkSubtree(gctx)
			}
		}
	}
	if err := c.fail(); err != nil {
		return nil, err
	}
	sort.Slice(occs, func(i, j int) bool {
		if occs[i].Count != occs[j].Count {
			return occs[i].Count > occs[j].Count
		}
		return occs[i].Path < occs[j].Path
	})
	if max > 0 && len(occs) > max {
		occs = occs[:max]
	}
	return occs, nil
}

// SuggestTagsNaive is the position-blind baseline: global tag-trie prefix
// completion ranked by global frequency.  Experiments E5/E6 compare it with
// SuggestTags.
func (e *Engine) SuggestTagsNaive(prefix string, k int) []Candidate {
	entries := e.ix.TagTrie().Complete(strings.ToLower(prefix), k)
	if len(entries) == 0 && prefix != "" {
		entries = e.ix.TagTrie().FuzzyComplete(strings.ToLower(prefix), 1, k)
	}
	out := make([]Candidate, 0, len(entries))
	for _, en := range entries {
		out = append(out, Candidate{Text: en.Word, Count: en.Weight, Kind: TagCandidate})
	}
	return out
}

// SuggestValuesNaive is the position-blind value baseline: the node tag's
// global value trie, ignoring where in the twig the node sits.
func (e *Engine) SuggestValuesNaive(tagName, prefix string, k int) []Candidate {
	tag := e.ix.Document().Tags().ID(tagName)
	if tag == doc.NoTag {
		return nil
	}
	vt := e.ix.ValueTrie(tag)
	if vt == nil {
		return nil
	}
	entries := vt.Complete(strings.ToLower(prefix), k)
	out := make([]Candidate, 0, len(entries))
	for _, en := range entries {
		out = append(out, Candidate{Text: en.Word, Count: en.Weight, Kind: ValueCandidate})
	}
	return out
}

func sortCandidates(cs []Candidate) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Count != cs[j].Count {
			return cs[i].Count > cs[j].Count
		}
		return cs[i].Text < cs[j].Text
	})
}

// editDistanceAtMost reports whether the Levenshtein distance between a and
// b is within max (a small-banded check; max is 1 in practice).
func editDistanceAtMost(a, b string, max int) bool {
	ra, rb := []rune(a), []rune(b)
	if abs(len(ra)-len(rb)) > max {
		return false
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin > max {
			return false
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)] <= max
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
