package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lotusx/internal/metrics"
)

// compute wraps a plain value into the Do callback shape.
func compute(v string, cost int64) func() (string, int64, bool, error) {
	return func() (string, int64, bool, error) { return v, cost, true, nil }
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New[string]("t", 1<<20, nil)
	if _, ok := c.Get("k"); ok {
		t.Fatal("Get on empty cache returned ok")
	}
	c.Put("k", "v1", 10)
	if v, ok := c.Get("k"); !ok || v != "v1" {
		t.Fatalf("Get = %q, %v; want v1, true", v, ok)
	}
	c.Put("k", "v2", 10)
	if v, ok := c.Get("k"); !ok || v != "v2" {
		t.Fatalf("after overwrite Get = %q, %v; want v2, true", v, ok)
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d; want 1", n)
	}
}

func TestDoHitMissComputed(t *testing.T) {
	met := metrics.New().Cache("t")
	c := New[string]("t", 1<<20, met)
	v, computed, err := c.Do(context.Background(), "k", compute("val", 10))
	if err != nil || !computed || v != "val" {
		t.Fatalf("first Do = %q, %v, %v; want val, true, nil", v, computed, err)
	}
	v, computed, err = c.Do(context.Background(), "k", compute("other", 10))
	if err != nil || computed || v != "val" {
		t.Fatalf("second Do = %q, %v, %v; want cached val, false, nil", v, computed, err)
	}
	if h, m := met.Hits.Load(), met.Misses.Load(); h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d; want 1, 1", h, m)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New[string]("t", 1<<20, nil)
	boom := errors.New("boom")
	_, _, err := c.Do(context.Background(), "k", func() (string, int64, bool, error) {
		return "", 0, true, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v; want boom", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("errored computation was cached")
	}
}

func TestDoUncacheableNotStored(t *testing.T) {
	c := New[string]("t", 1<<20, nil)
	v, computed, err := c.Do(context.Background(), "k", func() (string, int64, bool, error) {
		return "partial", 10, false, nil
	})
	if err != nil || !computed || v != "partial" {
		t.Fatalf("Do = %q, %v, %v", v, computed, err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("uncacheable result was stored")
	}
}

// TestLRUEviction fills one shard past its budget and checks the oldest
// entries go first.  All keys are forced onto one shard by brute-force
// search for same-shard keys.
func TestLRUEviction(t *testing.T) {
	met := metrics.New().Cache("t")
	// 16 shards, 4KiB total -> 256 bytes per shard.
	c := New[string]("t", 4096, met)
	target := c.shard("seed")
	var keys []string
	for i := 0; len(keys) < 4; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.shard(k) == target {
			keys = append(keys, k)
		}
	}
	// Each entry costs ~10 + len(key) + entryOverhead ≈ 111; three fit in
	// 256 only as two, so inserting 4 must evict the oldest.
	for _, k := range keys {
		c.Put(k, "v", 10)
	}
	if _, ok := c.Get(keys[0]); ok {
		t.Fatal("oldest entry survived past the shard budget")
	}
	if _, ok := c.Get(keys[len(keys)-1]); !ok {
		t.Fatal("newest entry was evicted")
	}
	if met.Evictions.Load() == 0 {
		t.Fatal("no evictions counted")
	}
	if b, per := c.Bytes(), c.perShard; b > per {
		t.Fatalf("shard bytes %d exceed budget %d", b, per)
	}
}

func TestLRURecencyOrder(t *testing.T) {
	c := New[string]("t", 4096, nil)
	target := c.shard("seed")
	var keys []string
	for i := 0; len(keys) < 3; i++ {
		k := fmt.Sprintf("rec-%d", i)
		if c.shard(k) == target {
			keys = append(keys, k)
		}
	}
	c.Put(keys[0], "a", 10)
	c.Put(keys[1], "b", 10)
	// Touch keys[0] so keys[1] is now least recent.
	c.Get(keys[0])
	c.Put(keys[2], "c", 10) // should evict keys[1]
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("least-recently-used entry survived eviction")
	}
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("recently-touched entry was evicted instead")
	}
}

func TestOversizedEntryNotStored(t *testing.T) {
	c := New[string]("t", 4096, nil) // 256 per shard
	c.Put("big", "v", 10_000)
	if _, ok := c.Get("big"); ok {
		t.Fatal("entry costing more than a shard budget was stored")
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("Len=%d Bytes=%d after rejected store; want 0, 0", c.Len(), c.Bytes())
	}
}

// TestSingleflight fires N concurrent Do calls for one key and requires
// exactly one computation: the compute blocks until all callers have had a
// chance to pile up.
func TestSingleflight(t *testing.T) {
	met := metrics.New().Cache("t")
	c := New[string]("t", 1<<20, met)
	const n = 16
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{}, n)

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			v, _, err := c.Do(context.Background(), "k", func() (string, int64, bool, error) {
				calls.Add(1)
				<-release
				return "shared", 10, true, nil
			})
			if err != nil || v != "shared" {
				t.Errorf("Do = %q, %v", v, err)
			}
		}()
	}
	for i := 0; i < n; i++ {
		<-started
	}
	// Give the goroutines time to reach Do before releasing the leader.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times; want 1", got)
	}
	if w := met.SingleflightWaits.Load(); w != n-1 {
		t.Fatalf("singleflight waits = %d; want %d", w, n-1)
	}
}

// TestWaiterContextCancel: a waiter whose own context dies must return
// promptly with that error, not hang on the leader.
func TestWaiterContextCancel(t *testing.T) {
	c := New[string]("t", 1<<20, nil)
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	go func() {
		c.Do(context.Background(), "k", func() (string, int64, bool, error) {
			close(leaderIn)
			<-release
			return "v", 10, true, nil
		})
	}()
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, "k", compute("v", 10))
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v; want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter did not return after its context was cancelled")
	}
	close(release)
}

// TestWaiterRecomputesAfterLeaderCtxError: the leader fails with ITS
// context's error; a healthy waiter must compute solo and store the result.
func TestWaiterRecomputesAfterLeaderCtxError(t *testing.T) {
	c := New[string]("t", 1<<20, nil)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	leaderOut := make(chan struct{})
	go func() {
		c.Do(leaderCtx, "k", func() (string, int64, bool, error) {
			close(leaderIn)
			<-leaderCtx.Done()
			return "", 0, false, leaderCtx.Err()
		})
		close(leaderOut)
	}()
	<-leaderIn

	waiterDone := make(chan struct{})
	var v string
	var computed bool
	var err error
	go func() {
		v, computed, err = c.Do(context.Background(), "k", compute("solo", 10))
		close(waiterDone)
	}()
	// Let the waiter join the flight, then kill the leader.
	time.Sleep(20 * time.Millisecond)
	cancelLeader()
	<-leaderOut
	select {
	case <-waiterDone:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter hung after leader context error")
	}
	if err != nil || !computed || v != "solo" {
		t.Fatalf("waiter Do = %q, %v, %v; want solo, true, nil", v, computed, err)
	}
	if got, ok := c.Get("k"); !ok || got != "solo" {
		t.Fatalf("solo recompute not stored: %q, %v", got, ok)
	}
}

// TestLeadPanicReleasesWaiters: a panicking compute must not strand
// waiters or leave the flight table dirty.
func TestLeadPanicReleasesWaiters(t *testing.T) {
	c := New[string]("t", 1<<20, nil)
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() { recover() }()
		c.Do(context.Background(), "k", func() (string, int64, bool, error) {
			close(leaderIn)
			<-release
			panic("kaboom")
		})
	}()
	<-leaderIn

	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), "k", compute("v", 10))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("waiter of a panicked flight got a nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter hung after leader panicked")
	}
	// The flight table must be clean: a fresh Do computes normally.
	v, computed, err := c.Do(context.Background(), "k", compute("fresh", 10))
	if err != nil || !computed || v != "fresh" {
		t.Fatalf("post-panic Do = %q, %v, %v", v, computed, err)
	}
}

func TestBypassContext(t *testing.T) {
	if Bypassed(context.Background()) {
		t.Fatal("plain context reports bypassed")
	}
	if !Bypassed(WithBypass(context.Background())) {
		t.Fatal("WithBypass context not reported bypassed")
	}
	if Bypassed(nil) {
		t.Fatal("nil context reports bypassed")
	}
}

// TestConcurrentMixed hammers the cache from many goroutines to give the
// race detector something to chew on.
func TestConcurrentMixed(t *testing.T) {
	c := New[int]("t", 1<<14, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", i%37)
				switch i % 3 {
				case 0:
					c.Put(k, i, int64(i%50))
				case 1:
					c.Get(k)
				default:
					c.Do(context.Background(), k, func() (int, int64, bool, error) {
						return i, int64(i % 50), true, nil
					})
				}
			}
		}(g)
	}
	wg.Wait()
}
