// Package cache implements the serving layer's hot-path caches: a generic,
// sharded, bounded LRU with per-key singleflight and generation-keyed
// invalidation.
//
// The LRU is byte-bounded (every entry carries a caller-estimated cost) and
// split into fixed shards so concurrent lookups on a hot serving path do not
// serialize on one mutex.  Singleflight collapses concurrent identical
// misses into one computation: the first caller computes, the rest wait on
// its result — an interactive session hammering the same keystroke fires one
// join, not N.
//
// Invalidation is by construction, not by scan: callers embed a snapshot
// generation in every key (see backend.go), so a corpus mutation — which
// bumps its copy-on-write snapshot sequence — simply makes all old keys
// unreachable.  Stale entries age out of the LRU; no locks, no sweeps, and a
// request that raced a mutation can never observe a newer generation's key
// pointing at older data.
package cache

import (
	"context"
	"errors"
	"sync"

	"lotusx/internal/metrics"
)

// shardCount is the fixed number of LRU shards; keys hash onto shards, so
// the per-shard byte budget is maxBytes/shardCount.
const shardCount = 16

// entryOverhead is the bookkeeping cost charged per entry on top of the
// caller-estimated value cost and the key bytes: the entry struct, list
// links and map slot.
const entryOverhead = 96

// Cache is a sharded, byte-bounded LRU from string keys to values of type V
// with per-key singleflight.  Values handed out are shared across callers —
// treat them as immutable.
type Cache[V any] struct {
	name     string
	perShard int64
	met      *metrics.CacheMetrics
	shards   [shardCount]lruShard[V]
}

// New returns a Cache bounded to roughly maxBytes of summed entry cost
// (spread over shardCount shards).  met, when non-nil, receives hit, miss,
// eviction and singleflight counters and is wired to report the cache's
// live size.
func New[V any](name string, maxBytes int64, met *metrics.CacheMetrics) *Cache[V] {
	per := maxBytes / shardCount
	if per < 1 {
		per = 1
	}
	c := &Cache[V]{name: name, perShard: per, met: met}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*entry[V])
		c.shards[i].flights = make(map[string]*flight[V])
	}
	if met != nil {
		met.SetSizeProvider(func() (int64, int64) { return c.Len(), c.Bytes() })
	}
	return c
}

// Name returns the cache's name.
func (c *Cache[V]) Name() string { return c.name }

// Len returns the number of live entries across all shards.
func (c *Cache[V]) Len() int64 {
	var n int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += int64(len(sh.entries))
		sh.mu.Unlock()
	}
	return n
}

// Bytes returns the summed entry cost across all shards.
func (c *Cache[V]) Bytes() int64 {
	var n int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.bytes
		sh.mu.Unlock()
	}
	return n
}

// Get peeks at a key, updating its recency.  A found value counts as a hit;
// an absent key counts nothing (the caller decides what a miss means — see
// the prefix-extension path in backend.go, which peeks several keys per
// request).
func (c *Cache[V]) Get(key string) (V, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	e := sh.lookup(key)
	if e == nil {
		sh.mu.Unlock()
		var zero V
		return zero, false
	}
	v := e.val
	sh.mu.Unlock()
	if c.met != nil {
		c.met.Hits.Add(1)
	}
	return v, true
}

// Put stores a value under key at the given cost estimate, evicting
// least-recently-used entries as needed.  An entry costing more than one
// shard's budget is not stored at all.
func (c *Cache[V]) Put(key string, v V, cost int64) {
	sh := c.shard(key)
	sh.mu.Lock()
	evicted := sh.store(key, v, cost+int64(len(key))+entryOverhead, c.perShard)
	sh.mu.Unlock()
	if evicted > 0 && c.met != nil {
		c.met.Evictions.Add(evicted)
	}
}

// Do looks key up and, on a miss, runs compute — collapsing concurrent
// identical misses into one computation.  compute returns the value, its
// byte-cost estimate, whether the value may be stored (a degraded result or
// one computed against an already-superseded generation says false), and an
// error.  Do returns the value and whether THIS caller ran compute (false
// for cache hits and singleflight waiters).
//
// A waiter whose own context dies returns that context's error without
// waiting further.  A waiter handed a context error from the computing
// caller — whose deadline is not this caller's deadline — recomputes alone
// rather than failing a healthy request with someone else's timeout.
func (c *Cache[V]) Do(ctx context.Context, key string, compute func() (V, int64, bool, error)) (V, bool, error) {
	sh := c.shard(key)
	sh.mu.Lock()
	if e := sh.lookup(key); e != nil {
		v := e.val
		sh.mu.Unlock()
		if c.met != nil {
			c.met.Hits.Add(1)
		}
		return v, false, nil
	}
	if f := sh.flights[key]; f != nil {
		sh.mu.Unlock()
		if c.met != nil {
			c.met.SingleflightWaits.Add(1)
		}
		return c.await(ctx, key, f, compute)
	}
	f := &flight[V]{done: make(chan struct{})}
	sh.flights[key] = f
	sh.mu.Unlock()
	if c.met != nil {
		c.met.Misses.Add(1)
	}
	return c.lead(key, sh, f, compute)
}

// lead runs compute as the flight's owner and publishes the outcome to any
// waiters.  The flight is always resolved — even if compute panics — so
// waiters can never hang.
func (c *Cache[V]) lead(key string, sh *lruShard[V], f *flight[V], compute func() (V, int64, bool, error)) (V, bool, error) {
	finished := false
	defer func() {
		if !finished { // compute panicked; release the waiters, then re-panic
			sh.mu.Lock()
			delete(sh.flights, key)
			sh.mu.Unlock()
			f.err = errors.New("cache: computation panicked")
			close(f.done)
		}
	}()
	v, cost, cacheable, err := compute()
	finished = true

	sh.mu.Lock()
	delete(sh.flights, key)
	var evicted int64
	if err == nil && cacheable {
		evicted = sh.store(key, v, cost+int64(len(key))+entryOverhead, c.perShard)
	}
	sh.mu.Unlock()
	if evicted > 0 && c.met != nil {
		c.met.Evictions.Add(evicted)
	}

	f.val, f.err = v, err
	close(f.done)
	return v, true, err
}

// await blocks on an in-flight computation for the same key.
func (c *Cache[V]) await(ctx context.Context, key string, f *flight[V], compute func() (V, int64, bool, error)) (V, bool, error) {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-f.done:
		if f.err == nil {
			return f.val, false, nil
		}
		if isCtxErr(f.err) && (ctx == nil || ctx.Err() == nil) {
			// The computing caller died of its own deadline; this caller is
			// still alive, so compute for it alone (and keep the result).
			v, cost, cacheable, err := compute()
			if err == nil && cacheable {
				c.Put(key, v, cost)
			}
			return v, true, err
		}
		var zero V
		return zero, false, f.err
	case <-done:
		var zero V
		return zero, false, ctx.Err()
	}
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// shard maps a key to its LRU shard by FNV-1a.
func (c *Cache[V]) shard(key string) *lruShard[V] {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &c.shards[h%shardCount]
}

// lruShard is one lock's worth of the cache: an intrusive doubly-linked LRU
// list over a key map, plus the shard's singleflight table.
type lruShard[V any] struct {
	mu      sync.Mutex
	entries map[string]*entry[V]
	head    *entry[V] // most recently used
	tail    *entry[V] // least recently used
	bytes   int64
	flights map[string]*flight[V]
}

type entry[V any] struct {
	key        string
	val        V
	cost       int64
	prev, next *entry[V]
}

// flight is one in-progress computation; done closes once val/err are set.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// lookup returns the live entry for key, promoting it to most recent.
// Callers hold sh.mu.
func (sh *lruShard[V]) lookup(key string) *entry[V] {
	e := sh.entries[key]
	if e != nil {
		sh.moveToFront(e)
	}
	return e
}

// store inserts or replaces key at the given total cost and evicts from the
// LRU tail until the shard is within budget, returning how many entries were
// evicted.  An entry that alone exceeds the budget is not stored (and any
// previous entry under its key is dropped — the caller's value is newer).
// Callers hold sh.mu.
func (sh *lruShard[V]) store(key string, v V, cost, budget int64) int64 {
	var evicted int64
	if old := sh.entries[key]; old != nil {
		sh.unlink(old)
		delete(sh.entries, key)
		sh.bytes -= old.cost
	}
	if cost > budget {
		return evicted
	}
	e := &entry[V]{key: key, val: v, cost: cost}
	sh.entries[key] = e
	sh.bytes += cost
	sh.pushFront(e)
	for sh.bytes > budget && sh.tail != nil && sh.tail != e {
		t := sh.tail
		sh.unlink(t)
		delete(sh.entries, t.key)
		sh.bytes -= t.cost
		evicted++
	}
	return evicted
}

func (sh *lruShard[V]) pushFront(e *entry[V]) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *lruShard[V]) unlink(e *entry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *lruShard[V]) moveToFront(e *entry[V]) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// bypassKey marks a context whose requests must not read or write the
// caches (trace-debug requests: a trace of a cache hit would be empty).
type bypassKey struct{}

// WithBypass returns a context under which wrapped backends skip the caches
// entirely.
func WithBypass(ctx context.Context) context.Context {
	return context.WithValue(ctx, bypassKey{}, true)
}

// Bypassed reports whether ctx opted out of caching.
func Bypassed(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	v, _ := ctx.Value(bypassKey{}).(bool)
	return v
}
