package cache

import (
	"context"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"lotusx/internal/complete"
	"lotusx/internal/core"
	"lotusx/internal/metrics"
	"lotusx/internal/obs"
	"lotusx/internal/twig"
)

// Backend-boundary caching: Set.Wrap decorates any core.Backend with a
// search-result cache and a completion cache, both keyed by the backend's
// snapshot generation (core.Backend.Generation), so admin mutations
// invalidate by making old keys unreachable rather than by scanning.
//
// Search results are cached page-folded: the entry under a key holds the
// full materialized prefix (K+Offset answers from offset 0), and any page
// over the same prefix is sliced from it — page 2 of a query the user just
// paged through is a cache hit, not a re-join.  This is sound because both
// engine and corpus search paths derive a (K, Offset) page from the same
// (K+Offset, 0) materialization with identical arithmetic.
//
// Completions additionally get a prefix-extension fast path: when the entry
// for a shorter prefix of the same position is complete — it held fewer
// than k candidates and none were fuzzy, so it is the position's entire
// exact candidate set — the longer prefix's answer is a pure filter of it,
// computed without touching the backend at all.  Typing "a", "au", "aut"
// costs one real completion, not three.

// Config sizes and enables a Set's caches.
type Config struct {
	// Results enables the search-result cache.
	Results bool
	// Completions enables the completion cache.
	Completions bool
	// MaxBytes bounds the summed cost of both caches; <= 0 disables both.
	// Search results get 3/4 of the budget, completions (tiny entries) 1/4.
	MaxBytes int64
	// Metrics receives per-cache counters under "results"/"completions";
	// nil runs uncounted.
	Metrics *metrics.Registry
}

// Set is one pair of hot-path caches shared by every wrapped backend of a
// server.  Wrapped backends get distinct key spaces, so two datasets — or a
// deleted-then-recreated dataset whose generation counter restarted —
// can never collide.
type Set struct {
	results     *Cache[*core.HitResult]
	completions *Cache[completionEntry]
	ids         atomic.Uint64
}

// NewSet builds the caches cfg enables; a Set with everything disabled (or
// a nil Set) wraps backends as themselves.
func NewSet(cfg Config) *Set {
	if cfg.MaxBytes <= 0 || (!cfg.Results && !cfg.Completions) {
		return &Set{}
	}
	s := &Set{}
	if cfg.Results {
		var met *metrics.CacheMetrics
		if cfg.Metrics != nil {
			met = cfg.Metrics.Cache("results")
		}
		s.results = New[*core.HitResult]("results", cfg.MaxBytes/4*3, met)
	}
	if cfg.Completions {
		var met *metrics.CacheMetrics
		if cfg.Metrics != nil {
			met = cfg.Metrics.Cache("completions")
		}
		s.completions = New[completionEntry]("completions", cfg.MaxBytes/4, met)
	}
	return s
}

// Wrap decorates b with the set's caches.  It returns b unchanged when
// nothing is enabled, so callers can wrap unconditionally.
func (s *Set) Wrap(b core.Backend) core.Backend {
	if s == nil || (s.results == nil && s.completions == nil) {
		return b
	}
	return &backend{Backend: b, set: s, id: s.ids.Add(1)}
}

// completionEntry is one cached completion answer.  complete marks it as
// the position's entire exact candidate set (fewer than k candidates, none
// fuzzy) — the precondition of the prefix-extension fast path.
type completionEntry struct {
	cands    []complete.Candidate
	complete bool
}

// backend decorates a core.Backend with the set's caches.  Everything not
// overridden (Info, ExplainTags, Engines, Generation) passes through.
type backend struct {
	core.Backend
	set *Set
	id  uint64
}

// SearchHits implements core.Backend with page-folded result caching.
func (w *backend) SearchHits(ctx context.Context, q *twig.Query, opts core.SearchOptions) (*core.HitResult, error) {
	if w.set.results == nil || Bypassed(ctx) {
		return w.Backend.SearchHits(ctx, q, opts)
	}
	// Normalize before rendering the key: the canonical string of an
	// unnormalized query differs from its normalized twin's.  Normalize is
	// idempotent, so the inner evaluation's own call is a no-op.
	if err := q.Normalize(); err != nil {
		return nil, err
	}
	copts := opts.Canonical()
	gen := w.Backend.Generation()
	key := w.searchKey(gen, q, copts)
	start := time.Now()

	full, computed, err := w.set.results.Do(ctx, key, func() (*core.HitResult, int64, bool, error) {
		fullOpts := copts
		fullOpts.K = copts.K + copts.Offset
		fullOpts.Offset = 0
		res, err := w.Backend.SearchHits(ctx, q, fullOpts)
		if err != nil {
			return nil, 0, false, err
		}
		// Never cache a degraded answer as the real one, a page cut short by
		// a dying context, or a result that raced a snapshot publish (the
		// generation the key names may no longer be what was read).
		cacheable := !res.Partial && ctx.Err() == nil && w.Backend.Generation() == gen
		return res, hitsCost(res), cacheable, nil
	})
	if err != nil {
		return nil, err
	}
	markSpan(ctx, !computed)
	return slicePage(full, copts.K, copts.Offset, start), nil
}

// CompleteTags implements core.Backend with completion caching and the
// prefix-extension fast path.
func (w *backend) CompleteTags(ctx context.Context, q *twig.Query, anchor int, axis twig.Axis, prefix string, k int) ([]complete.Candidate, error) {
	return w.completions(ctx, 'T', complete.AnchorChain(q, anchor), axis, prefix, k,
		func() ([]complete.Candidate, error) {
			return w.Backend.CompleteTags(ctx, q, anchor, axis, prefix, k)
		})
}

// CompleteValues implements core.Backend with completion caching and the
// prefix-extension fast path.
func (w *backend) CompleteValues(ctx context.Context, q *twig.Query, focus int, prefix string, k int) ([]complete.Candidate, error) {
	return w.completions(ctx, 'V', complete.AnchorChain(q, focus), 0, prefix, k,
		func() ([]complete.Candidate, error) {
			return w.Backend.CompleteValues(ctx, q, focus, prefix, k)
		})
}

// completions is the shared cache path of CompleteTags/CompleteValues:
// exact-key hit, then prefix-extension from a complete shorter-prefix
// entry, then the real computation under singleflight.
func (w *backend) completions(ctx context.Context, kind byte, chain string, axis twig.Axis, prefix string, k int, ask func() ([]complete.Candidate, error)) ([]complete.Candidate, error) {
	if w.set.completions == nil || Bypassed(ctx) || k <= 0 {
		return ask()
	}
	// Both completion filters compare against the lowercased prefix, so two
	// prefixes differing only in case are the same request.
	lower := strings.ToLower(prefix)
	gen := w.Backend.Generation()
	key := w.completionKey(gen, kind, chain, axis, lower, k)

	if e, ok := w.set.completions.Get(key); ok {
		markSpan(ctx, true)
		return copyCands(e.cands), nil
	}

	// Prefix extension: the longest cached COMPLETE entry for a shorter
	// prefix of the same position already holds every exact candidate; the
	// answer for lower is a pure filter of it.  An empty filter result falls
	// through to the real computation instead — the backend may still have a
	// fuzzy (edit-distance) fallback to offer.
	for n := len(lower) - 1; n >= 0; n-- {
		parentKey := w.completionKey(gen, kind, chain, axis, lower[:n], k)
		e, ok := w.set.completions.Get(parentKey)
		if !ok {
			continue
		}
		if !e.complete {
			break // a capped or fuzzy parent proves nothing; compute for real
		}
		if derived := filterCands(e.cands, kind, lower); len(derived) > 0 {
			w.set.completions.Put(key, completionEntry{cands: derived, complete: true}, candsCost(derived))
			markSpan(ctx, true)
			return copyCands(derived), nil
		}
		break
	}

	e, computed, err := w.set.completions.Do(ctx, key, func() (completionEntry, int64, bool, error) {
		cands, err := ask()
		if err != nil {
			return completionEntry{}, 0, false, err
		}
		ent := completionEntry{cands: cands, complete: isComplete(cands, k)}
		cacheable := ctx.Err() == nil && w.Backend.Generation() == gen
		return ent, candsCost(cands), cacheable, nil
	})
	if err != nil {
		return nil, err
	}
	markSpan(ctx, !computed)
	return copyCands(e.cands), nil
}

// searchKey renders the result-cache key: wrapper identity, snapshot
// generation, the canonicalized options with the page folded to its
// materialization prefix (want = K+Offset), and the canonical query string
// last (it may contain any byte the user typed).
func (w *backend) searchKey(gen uint64, q *twig.Query, copts core.SearchOptions) string {
	var b strings.Builder
	b.WriteByte('s')
	b.WriteByte('|')
	b.WriteString(strconv.FormatUint(w.id, 10))
	b.WriteByte('|')
	b.WriteString(strconv.FormatUint(gen, 10))
	b.WriteByte('|')
	b.WriteString(string(copts.Algorithm))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(copts.K + copts.Offset)) // the page fold
	b.WriteByte('|')
	if copts.Rewrite {
		b.WriteByte('r')
	}
	if copts.Minimize {
		b.WriteByte('m')
	}
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(copts.MaxPenalty, 'g', -1, 64))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(copts.MaxRewrites))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(copts.MaxMatches))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(copts.SnippetMax))
	b.WriteByte('|')
	b.WriteString(q.String())
	return b.String()
}

// completionKey renders the completion-cache key; the user-typed prefix is
// last and the anchor chain before it cannot contain the separator (XML
// names carry no control bytes), so the encoding is unambiguous.
func (w *backend) completionKey(gen uint64, kind byte, chain string, axis twig.Axis, lower string, k int) string {
	var b strings.Builder
	b.WriteByte('c')
	b.WriteByte(kind)
	b.WriteByte('|')
	b.WriteString(strconv.FormatUint(w.id, 10))
	b.WriteByte('|')
	b.WriteString(strconv.FormatUint(gen, 10))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(int(axis)))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(k))
	b.WriteByte('|')
	b.WriteString(chain)
	b.WriteByte(0x1f)
	b.WriteString(lower)
	return b.String()
}

// slicePage derives the requested (k, offset) page from a cached full
// materialization, with arithmetic matching what the engine and corpus
// paths do natively — including nil-ness of the hits slice, so a cached
// page is byte-identical to an uncached one modulo Elapsed.
func slicePage(full *core.HitResult, k, offset int, start time.Time) *core.HitResult {
	out := *full
	if offset >= len(full.Hits) {
		out.Hits = nil
	} else {
		out.Hits = full.Hits[offset:]
		if len(out.Hits) > k {
			out.Hits = out.Hits[:k]
		}
	}
	out.Exact = full.Exact - offset
	if out.Exact < 0 {
		out.Exact = 0
	}
	out.Elapsed = time.Since(start)
	return &out
}

// filterCands replicates the backend's own prefix predicates — tags compare
// case-folded, values compare the raw text (see internal/complete
// filterTagCandidates and suggestValues) — so a derived entry matches what
// a fresh computation would return.  The input is already sorted by the
// total order (count desc, text asc); a filtered subsequence stays sorted.
func filterCands(cands []complete.Candidate, kind byte, lower string) []complete.Candidate {
	var out []complete.Candidate
	for _, c := range cands {
		text := c.Text
		if kind == 'T' {
			text = strings.ToLower(text)
		}
		if strings.HasPrefix(text, lower) {
			out = append(out, c)
		}
	}
	return out
}

// isComplete reports whether cands is the position's entire exact candidate
// set: nothing was cut at k and nothing came from the fuzzy fallback.
func isComplete(cands []complete.Candidate, k int) bool {
	if len(cands) >= k {
		return false
	}
	for _, c := range cands {
		if c.Fuzzy {
			return false
		}
	}
	return true
}

// copyCands hands callers their own slice so cached candidates can never be
// aliased and mutated; nil-ness is preserved (it is JSON-visible).
func copyCands(cands []complete.Candidate) []complete.Candidate {
	if cands == nil {
		return nil
	}
	return append(make([]complete.Candidate, 0, len(cands)), cands...)
}

// hitsCost estimates the resident bytes of a cached result.
func hitsCost(res *core.HitResult) int64 {
	cost := int64(160) // the HitResult itself
	for i := range res.Hits {
		h := &res.Hits[i]
		cost += int64(len(h.Shard)+len(h.Path)+len(h.Snippet)+len(h.Rewrite)) +
			int64(len(h.Highlights))*48 + 160
	}
	return cost
}

// candsCost estimates the resident bytes of a cached candidate list.
func candsCost(cands []complete.Candidate) int64 {
	cost := int64(48)
	for i := range cands {
		cost += int64(len(cands[i].Text)) + 48
	}
	return cost
}

// markSpan records the cache outcome on the request's trace span, if any.
func markSpan(ctx context.Context, hit bool) {
	sp := obs.FromContext(ctx)
	if sp == nil {
		return
	}
	if hit {
		sp.Set("cache", "hit")
	} else {
		sp.Set("cache", "miss")
	}
}
