package cache

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lotusx/internal/complete"
	"lotusx/internal/core"
	"lotusx/internal/corpus"
	"lotusx/internal/doc"
	"lotusx/internal/faults"
	"lotusx/internal/metrics"
	"lotusx/internal/twig"
)

const bibXML = `<dblp created="2005">
  <article key="a1">
    <author>Jiaheng Lu</author>
    <title>Holistic Twig Joins</title>
    <year>2005</year>
  </article>
  <article key="a2">
    <author>Chunbin Lin</author>
    <author>Jiaheng Lu</author>
    <title>LotusX Demo</title>
    <year>2012</year>
  </article>
  <article key="a3">
    <author>Wei Wang</author>
    <title>Structural Joins</title>
    <year>2002</year>
  </article>
  <inproceedings key="c1">
    <author>Jiaheng Lu</author>
    <title>TJFast</title>
    <year>2005</year>
  </inproceedings>
</dblp>`

const extraXML = `<dblp><article key="x1"><author>Ada Author</author><title>Twig Caching</title><year>2026</year></article></dblp>`

func mustDoc(t testing.TB, name, xml string) *doc.Document {
	t.Helper()
	d, err := doc.FromReader(name, strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustParse(t testing.TB, s string) *twig.Query {
	t.Helper()
	q, err := twig.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// countingBackend counts how often the real backend is actually asked.
type countingBackend struct {
	core.Backend
	searches  atomic.Int64
	completes atomic.Int64
}

func (b *countingBackend) SearchHits(ctx context.Context, q *twig.Query, opts core.SearchOptions) (*core.HitResult, error) {
	b.searches.Add(1)
	return b.Backend.SearchHits(ctx, q, opts)
}

func (b *countingBackend) CompleteTags(ctx context.Context, q *twig.Query, anchor int, axis twig.Axis, prefix string, k int) ([]complete.Candidate, error) {
	b.completes.Add(1)
	return b.Backend.CompleteTags(ctx, q, anchor, axis, prefix, k)
}

func (b *countingBackend) CompleteValues(ctx context.Context, q *twig.Query, focus int, prefix string, k int) ([]complete.Candidate, error) {
	b.completes.Add(1)
	return b.Backend.CompleteValues(ctx, q, focus, prefix, k)
}

// wrapCounting decorates raw with a call counter and then the cache set.
func wrapCounting(raw core.Backend, set *Set) (*countingBackend, core.Backend) {
	counted := &countingBackend{Backend: raw}
	return counted, set.Wrap(counted)
}

func newSet(t testing.TB) *Set {
	t.Helper()
	return NewSet(Config{Results: true, Completions: true, MaxBytes: 1 << 22, Metrics: metrics.New()})
}

// resultJSON renders a HitResult with the one legitimately nondeterministic
// field (wall-clock Elapsed) zeroed — the byte-identity the ISSUE's
// invariant speaks about.
func resultJSON(t testing.TB, res *core.HitResult) string {
	t.Helper()
	cp := *res
	cp.Elapsed = 0
	b, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestWrappedSearchByteIdentical compares wrapped against raw on both
// backend kinds, for several options shapes, cold and warm.
func TestWrappedSearchByteIdentical(t *testing.T) {
	d := mustDoc(t, "bib", bibXML)
	single := core.FromDocument(d)
	sharded, err := corpus.FromDocument("bib", d, 2, corpus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, raw := range []core.Backend{single, sharded} {
		set := newSet(t)
		_, wrapped := wrapCounting(raw, set)
		for _, qs := range []string{"//article/title", `//article[author="Jiaheng Lu"]/title`, "//inproceedings/title"} {
			for _, opts := range []core.SearchOptions{
				{},
				{K: 2},
				{K: 1, Offset: 1},
				{K: 2, Rewrite: true},
				{K: 3, SnippetMax: 60},
			} {
				want, err := raw.SearchHits(context.Background(), mustParse(t, qs), opts)
				if err != nil {
					t.Fatal(err)
				}
				for pass := 0; pass < 2; pass++ { // cold, then warm
					got, err := wrapped.SearchHits(context.Background(), mustParse(t, qs), opts)
					if err != nil {
						t.Fatal(err)
					}
					if g, w := resultJSON(t, got), resultJSON(t, want); g != w {
						t.Fatalf("%s %s pass %d (%+v):\n got %s\nwant %s", raw.Info().Kind, qs, pass, opts, g, w)
					}
				}
			}
		}
	}
}

// TestPageFolding: page N must be served from page 0's entry without a
// second backend evaluation, and still match the raw answer exactly.
func TestPageFolding(t *testing.T) {
	d := mustDoc(t, "bib", bibXML)
	raw, err := corpus.FromDocument("bib", d, 2, corpus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	set := newSet(t)
	counted, wrapped := wrapCounting(raw, set)
	q := "//article/title"

	// Warm with the (K=3, Offset=0) materialization...
	if _, err := wrapped.SearchHits(context.Background(), mustParse(t, q), core.SearchOptions{K: 3}); err != nil {
		t.Fatal(err)
	}
	// ...then ask for interior pages of the same prefix.
	for _, opts := range []core.SearchOptions{{K: 1, Offset: 2}, {K: 2, Offset: 1}, {K: 3, Offset: 0}} {
		want, err := raw.SearchHits(context.Background(), mustParse(t, q), opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := wrapped.SearchHits(context.Background(), mustParse(t, q), opts)
		if err != nil {
			t.Fatal(err)
		}
		if g, w := resultJSON(t, got), resultJSON(t, want); g != w {
			t.Fatalf("page %+v:\n got %s\nwant %s", opts, g, w)
		}
	}
	if n := counted.searches.Load(); n != 1 {
		t.Fatalf("backend evaluated %d times; want 1 (pages folded)", n)
	}
}

// TestCompletionCachingAndPrefixExtension: typing a prefix one rune at a
// time after the first keystroke's entry is complete must not touch the
// backend again, and derived answers must equal fresh ones.
func TestCompletionCachingAndPrefixExtension(t *testing.T) {
	d := mustDoc(t, "bib", bibXML)
	raw, err := corpus.FromDocument("bib", d, 2, corpus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	set := newSet(t)
	counted, wrapped := wrapCounting(raw, set)
	ctx := context.Background()

	// Complete children of //dblp: "article" and "inproceedings" — fewer
	// than k and exact, so the empty-prefix entry is complete.
	anchorQ := mustParse(t, "//dblp")
	anchor := anchorQ.OutputNode().ID
	first, err := wrapped.CompleteTags(ctx, anchorQ.Clone(), anchor, twig.Child, "", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 || len(first) >= 10 {
		t.Fatalf("child tag candidates = %d, want a complete (0 < n < k) set", len(first))
	}
	for _, prefix := range []string{"a", "ar", "art", "arti"} {
		want, err := raw.CompleteTags(ctx, anchorQ.Clone(), anchor, twig.Child, prefix, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := wrapped.CompleteTags(ctx, anchorQ.Clone(), anchor, twig.Child, prefix, 10)
		if err != nil {
			t.Fatal(err)
		}
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(want)
		if string(gj) != string(wj) {
			t.Fatalf("prefix %q: derived %s != fresh %s", prefix, gj, wj)
		}
	}
	if n := counted.completes.Load(); n != 1 {
		t.Fatalf("backend completed %d times; want 1 (prefixes derived)", n)
	}

	// Case-insensitivity of the key: "AR" is the same request as "ar".
	if _, err := wrapped.CompleteTags(ctx, anchorQ.Clone(), anchor, twig.Child, "AR", 10); err != nil {
		t.Fatal(err)
	}
	if n := counted.completes.Load(); n != 1 {
		t.Fatalf("case-folded prefix recomputed (%d calls)", n)
	}

	// An empty filter result must fall through to the backend (fuzzy
	// fallback lives there), not return a cached empty answer.
	want, err := raw.CompleteTags(ctx, anchorQ.Clone(), anchor, twig.Child, "zzz", 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wrapped.CompleteTags(ctx, anchorQ.Clone(), anchor, twig.Child, "zzz", 10)
	if err != nil {
		t.Fatal(err)
	}
	gj, _ := json.Marshal(got)
	wj, _ := json.Marshal(want)
	if string(gj) != string(wj) {
		t.Fatalf("fallthrough prefix: %s != %s", gj, wj)
	}
	if n := counted.completes.Load(); n != 2 {
		t.Fatalf("empty-filter prefix did not reach the backend (%d calls)", n)
	}
}

// TestCompletionValuesCached covers the value-kind path (raw-text prefix
// predicate) end to end.
func TestCompletionValuesCached(t *testing.T) {
	d := mustDoc(t, "bib", bibXML)
	raw := core.FromDocument(d)
	set := newSet(t)
	counted, wrapped := wrapCounting(raw, set)
	ctx := context.Background()

	q := mustParse(t, "//article/year")
	focus := q.OutputNode().ID
	want, err := raw.CompleteValues(ctx, q.Clone(), focus, "2", 10)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		got, err := wrapped.CompleteValues(ctx, q.Clone(), focus, "2", 10)
		if err != nil {
			t.Fatal(err)
		}
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(want)
		if string(gj) != string(wj) {
			t.Fatalf("pass %d: %s != %s", pass, gj, wj)
		}
	}
	if n := counted.completes.Load(); n != 1 {
		t.Fatalf("values completed %d times; want 1", n)
	}
}

// TestGenerationInvalidation: a corpus mutation must make every cached
// answer unreachable — the next query recomputes against the new snapshot.
func TestGenerationInvalidation(t *testing.T) {
	d := mustDoc(t, "bib", bibXML)
	raw, err := corpus.FromDocument("bib", d, 2, corpus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	set := newSet(t)
	counted, wrapped := wrapCounting(raw, set)
	ctx := context.Background()
	qs := "//article/title"
	opts := core.SearchOptions{K: 10}

	before, err := wrapped.SearchHits(ctx, mustParse(t, qs), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wrapped.CompleteTags(ctx, nil, complete.NewRoot, twig.Child, "", 10); err != nil {
		t.Fatal(err)
	}

	if err := raw.Add("extra", mustDoc(t, "extra", extraXML)); err != nil {
		t.Fatal(err)
	}

	after, err := wrapped.SearchHits(ctx, mustParse(t, qs), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Hits) != len(before.Hits)+1 {
		t.Fatalf("post-ingest hits = %d; want %d (stale entry served?)", len(after.Hits), len(before.Hits)+1)
	}
	fresh, err := raw.SearchHits(ctx, mustParse(t, qs), opts)
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, after) != resultJSON(t, fresh) {
		t.Fatalf("post-ingest cached path diverged from raw:\n%s\n%s", resultJSON(t, after), resultJSON(t, fresh))
	}
	if n := counted.searches.Load(); n != 2 {
		t.Fatalf("searches = %d; want 2 (one per generation)", n)
	}

	// Remove flips the generation again: back to the original answer set,
	// but via a fresh evaluation, never the pre-ingest entry... which is in
	// fact byte-identical here, proving the arithmetic both ways.
	if err := raw.Remove("extra"); err != nil {
		t.Fatal(err)
	}
	again, err := wrapped.SearchHits(ctx, mustParse(t, qs), opts)
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, again) != resultJSON(t, before) {
		t.Fatalf("post-remove answer diverged from original")
	}
	if n := counted.searches.Load(); n != 3 {
		t.Fatalf("searches = %d; want 3", n)
	}
}

// TestPartialResultsNeverCached arms a persistent fault on one shard: every
// degraded answer must be recomputed, and once the shard recovers the
// pre-recovery degraded answers must not linger anywhere.
func TestPartialResultsNeverCached(t *testing.T) {
	reg := faults.New()
	d := mustDoc(t, "bib", bibXML)
	raw, err := corpus.FromDocument("bib", d, 2, corpus.Config{
		Faults: reg,
		// A forgiving breaker so the faulty shard keeps being attempted
		// (and keeps failing) rather than being quarantined mid-test.
		Tuning: corpus.Tuning{BreakerThreshold: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	shard := raw.Snapshot().Names()[0]
	set := newSet(t)
	counted, wrapped := wrapCounting(raw, set)
	ctx := context.Background()
	qs := "//article/title"

	reg.Enable(faults.Injection{Site: corpus.FaultShardSearch, Keys: []string{shard}, Err: errors.New("injected shard failure")})
	for i := 0; i < 3; i++ {
		res, err := wrapped.SearchHits(ctx, mustParse(t, qs), core.SearchOptions{K: 10})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Partial {
			t.Fatalf("query %d: expected a degraded answer while the fault is armed", i)
		}
	}
	if n := counted.searches.Load(); n != 3 {
		t.Fatalf("searches = %d; want 3 (degraded answers must not be cached)", n)
	}

	// Recovery: the fault is disarmed, the next query is full — computed
	// fresh, not resurrected from any pre-recovery state — and only then
	// does caching kick in.
	reg.Disable(corpus.FaultShardSearch)
	full, err := wrapped.SearchHits(ctx, mustParse(t, qs), core.SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if full.Partial {
		t.Fatal("still partial after recovery")
	}
	want, err := raw.SearchHits(ctx, mustParse(t, qs), core.SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, full) != resultJSON(t, want) {
		t.Fatal("post-recovery answer differs from raw")
	}
	repeat, err := wrapped.SearchHits(ctx, mustParse(t, qs), core.SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !repeat.Partial && resultJSON(t, repeat) != resultJSON(t, want) {
		t.Fatal("warm post-recovery answer differs")
	}
	if n := counted.searches.Load(); n != 4 {
		t.Fatalf("searches = %d; want 4 (full answer cached after recovery)", n)
	}
}

// TestBypassSkipsCache: a bypassed context must neither read nor write.
func TestBypassSkipsCache(t *testing.T) {
	d := mustDoc(t, "bib", bibXML)
	raw := core.FromDocument(d)
	set := newSet(t)
	counted, wrapped := wrapCounting(raw, set)
	qs := "//article/title"

	bctx := WithBypass(context.Background())
	for i := 0; i < 2; i++ {
		if _, err := wrapped.SearchHits(bctx, mustParse(t, qs), core.SearchOptions{K: 5}); err != nil {
			t.Fatal(err)
		}
		if _, err := wrapped.CompleteTags(bctx, nil, complete.NewRoot, twig.Child, "a", 10); err != nil {
			t.Fatal(err)
		}
	}
	if s, c := counted.searches.Load(), counted.completes.Load(); s != 2 || c != 2 {
		t.Fatalf("bypassed calls were cached: searches=%d completes=%d; want 2, 2", s, c)
	}
	// And nothing was written: a normal request still misses.
	if _, err := wrapped.SearchHits(context.Background(), mustParse(t, qs), core.SearchOptions{K: 5}); err != nil {
		t.Fatal(err)
	}
	if n := counted.searches.Load(); n != 3 {
		t.Fatalf("bypassed result leaked into the cache (searches=%d)", n)
	}
}

// TestInterleavingInvariant is the ISSUE's correctness invariant: for a
// deterministic interleaving of queries, completions and admin mutations,
// every wrapped answer equals the raw answer computed fresh at that moment.
func TestInterleavingInvariant(t *testing.T) {
	d := mustDoc(t, "bib", bibXML)
	raw, err := corpus.FromDocument("bib", d, 2, corpus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	set := newSet(t)
	_, wrapped := wrapCounting(raw, set)
	ctx := context.Background()

	queries := []string{"//article/title", `//article[author="Jiaheng Lu"]/title`, "//inproceedings/title"}
	pages := []core.SearchOptions{{K: 10}, {K: 2}, {K: 2, Offset: 1}, {K: 1, Offset: 2}}
	prefixes := []string{"", "a", "ar", "t", "ti"}

	check := func(step int) {
		for _, qs := range queries {
			for _, opts := range pages {
				want, err := raw.SearchHits(ctx, mustParse(t, qs), opts)
				if err != nil {
					t.Fatal(err)
				}
				got, err := wrapped.SearchHits(ctx, mustParse(t, qs), opts)
				if err != nil {
					t.Fatal(err)
				}
				if g, w := resultJSON(t, got), resultJSON(t, want); g != w {
					t.Fatalf("step %d %s %+v:\n got %s\nwant %s", step, qs, opts, g, w)
				}
			}
		}
		for _, p := range prefixes {
			want, err := raw.CompleteTags(ctx, nil, complete.NewRoot, twig.Child, p, 10)
			if err != nil {
				t.Fatal(err)
			}
			got, err := wrapped.CompleteTags(ctx, nil, complete.NewRoot, twig.Child, p, 10)
			if err != nil {
				t.Fatal(err)
			}
			gj, _ := json.Marshal(got)
			wj, _ := json.Marshal(want)
			if string(gj) != string(wj) {
				t.Fatalf("step %d prefix %q: %s != %s", step, p, gj, wj)
			}
		}
	}

	mutations := []func() error{
		func() error { return raw.Add("extra", mustDoc(t, "extra", extraXML)) },
		func() error { return raw.Remove("extra") },
		func() error { return raw.Add("extra", mustDoc(t, "extra", extraXML)) },
		func() error { return raw.Reindex("extra") },
		func() error { return raw.Remove("extra") },
	}
	check(0)
	for i, mut := range mutations {
		if err := mut(); err != nil {
			t.Fatal(err)
		}
		check(i + 1)
	}
}

// TestSingleflightCollapsesBackendCalls drives N concurrent identical
// queries through a deliberately slow backend and requires one evaluation.
func TestSingleflightCollapsesBackendCalls(t *testing.T) {
	d := mustDoc(t, "bib", bibXML)
	raw := core.FromDocument(d)
	slow := &slowBackend{Backend: raw, delay: 30 * time.Millisecond}
	set := newSet(t)
	wrapped := set.Wrap(slow)

	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := wrapped.SearchHits(context.Background(), mustParse(t, "//article/title"), core.SearchOptions{K: 5})
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := slow.calls.Load(); got != 1 {
		t.Fatalf("backend evaluated %d times under concurrency; want 1", got)
	}
}

// slowBackend stretches each evaluation so concurrent callers overlap.
type slowBackend struct {
	core.Backend
	delay time.Duration
	calls atomic.Int64
}

func (b *slowBackend) SearchHits(ctx context.Context, q *twig.Query, opts core.SearchOptions) (*core.HitResult, error) {
	b.calls.Add(1)
	time.Sleep(b.delay)
	return b.Backend.SearchHits(ctx, q, opts)
}
