package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Everything must be callable on nil receivers — the tracing-off path.
	var tr *Trace
	var sp *Span
	tr.Finish()
	tr.Each(func(*Span) { t.Fatal("nil trace visited a span") })
	if tr.Root() != nil || tr.Render() != nil || tr.Tree() != "" || tr.Compact() != "" {
		t.Fatal("nil trace rendered something")
	}
	if c := sp.Child("x"); c != nil {
		t.Fatal("nil span produced a child")
	}
	sp.End()
	sp.Set("k", "v")
	sp.SetInt("n", 1)
	sp.SetErr(errors.New("boom"))
	if sp.Name() != "" || sp.Attr("k") != "" || sp.Duration() != 0 || sp.Ended() {
		t.Fatal("nil span reported state")
	}
}

func TestStartWithoutTraceIsInert(t *testing.T) {
	ctx := context.Background()
	sp, ctx2 := Start(ctx, "stage")
	if sp != nil {
		t.Fatal("Start on an untraced context returned a span")
	}
	if ctx2 != ctx {
		t.Fatal("Start on an untraced context rewrapped the context")
	}
}

func TestSpanTreeNesting(t *testing.T) {
	tr := New("query")
	ctx := ContextWith(context.Background(), tr.Root())

	parse, ctx2 := Start(ctx, "parse")
	parse.End()
	join, ctx3 := Start(ctx2, "join")
	inner, _ := Start(ctx3, "rank")
	inner.SetInt("matches", 42)
	inner.End()
	join.End()
	tr.Finish()

	// parse is a child of the root; rank nests under join which nests under
	// parse (Start used parse's context), mirroring the call chain.
	n := tr.Render()
	if n.Name != "query" || len(n.Children) != 1 || n.Children[0].Name != "parse" {
		t.Fatalf("unexpected tree root: %+v", n)
	}
	j := n.Children[0].Children[0]
	if j.Name != "join" || len(j.Children) != 1 || j.Children[0].Name != "rank" {
		t.Fatalf("unexpected nesting: %+v", j)
	}
	if j.Children[0].Attrs["matches"] != "42" {
		t.Fatalf("attr lost: %+v", j.Children[0].Attrs)
	}
}

func TestEachOrderAndDurations(t *testing.T) {
	tr := New("root")
	a := tr.Root().Child("a")
	time.Sleep(2 * time.Millisecond)
	a.End()
	b := tr.Root().Child("b")
	b.End()
	tr.Finish()

	var names []string
	tr.Each(func(s *Span) { names = append(names, s.Name()) })
	if got := strings.Join(names, ","); got != "root,a,b" {
		t.Fatalf("Each order: %s", got)
	}
	if a.Duration() <= 0 || tr.Root().Duration() < a.Duration() {
		t.Fatalf("durations inconsistent: root %v, a %v", tr.Root().Duration(), a.Duration())
	}
	if !a.Ended() || !tr.Root().Ended() {
		t.Fatal("spans not marked ended")
	}
}

func TestSetOverwrites(t *testing.T) {
	tr := New("x")
	tr.Root().Set("k", "1")
	tr.Root().Set("k", "2")
	if got := tr.Root().Attr("k"); got != "2" {
		t.Fatalf("Set did not overwrite: %q", got)
	}
}

// TestConcurrentChildren hammers one parent span from many goroutines —
// the corpus fan-out shape; run under -race.
func TestConcurrentChildren(t *testing.T) {
	tr := New("fanout")
	const workers = 16
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := tr.Root().Child("shard")
			sp.Set("shard", fmt.Sprintf("s%03d", i))
			sp.SetInt("hits", i)
			sp.End()
		}(i)
	}
	wg.Wait()
	tr.Finish()

	count := 0
	tr.Each(func(s *Span) {
		if s.Name() == "shard" {
			count++
			if !s.Ended() {
				t.Errorf("shard span %s not ended", s.Attr("shard"))
			}
		}
	})
	if count != workers {
		t.Fatalf("got %d shard spans, want %d", count, workers)
	}
}

func TestRenderJSONShape(t *testing.T) {
	tr := New("query")
	sp := tr.Root().Child("parse")
	sp.End()
	tr.Finish()
	raw, err := json.Marshal(tr.Render())
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Name       string `json:"name"`
		DurationMS any    `json:"durationMs"`
		Children   []struct {
			Name    string  `json:"name"`
			StartMS float64 `json:"startMs"`
		} `json:"children"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Name != "query" || len(decoded.Children) != 1 || decoded.Children[0].Name != "parse" {
		t.Fatalf("bad JSON: %s", raw)
	}
}

func TestTreeAndCompact(t *testing.T) {
	tr := New("query")
	f := tr.Root().Child("fanout")
	s := f.Child("shard")
	s.Set("shard", "x/000")
	s.End()
	f.End()
	tr.Root().Child("merge").End()
	tr.Finish()

	tree := tr.Tree()
	for _, want := range []string{"query ", "  fanout ", "    shard ", "[shard=x/000]", "  merge "} {
		if !strings.Contains(tree, want) {
			t.Fatalf("Tree missing %q:\n%s", want, tree)
		}
	}
	compact := tr.Compact()
	if !strings.Contains(compact, "fanout") || !strings.Contains(compact, "(shard") {
		t.Fatalf("Compact missing nesting: %s", compact)
	}
	if strings.Contains(compact, "\n") {
		t.Fatalf("Compact is not one line: %q", compact)
	}
}
