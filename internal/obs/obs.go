// Package obs is the query-observability layer: a lightweight span tree
// (Trace/Span) that attributes a request's latency to the pipeline stages
// that produced it — twig parse, the join algorithm that ran, completion
// scans, rewriting, ranking, and (for sharded corpora) one span per shard
// of the parallel fan-out plus the global merge.
//
// The design goal is zero cost when tracing is off: a nil *Span (and a nil
// *Trace) is a valid receiver for every method, and Start on a context that
// carries no active span returns (nil, ctx) without allocating.  Callers
// therefore instrument unconditionally:
//
//	sp, ctx := obs.Start(ctx, "rank")
//	defer sp.End()
//	sp.SetInt("matches", n)
//
// and pay only a context value lookup plus nil checks until a caller —
// the HTTP server on ?debug=trace, the slow-query logger, the REPL's
// :trace toggle — roots a Trace in the context.
//
// Spans are safe for concurrent child creation and attribute writes, which
// the corpus fan-out relies on: every shard goroutine opens its own child
// under the shared fan-out span.
package obs

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.  Values are strings so a
// finished trace is trivially renderable and needs no reflection.
type Attr struct {
	Key   string
	Value string
}

// Span is one timed stage of a trace.  The zero value is not used; spans
// are created by Trace.New's root and Span.Child.  All methods are safe on
// a nil receiver (the "tracing off" fast path) and safe for concurrent use.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time // zero while the span is open
	attrs    []Attr
	children []*Span
	// grafts are pre-rendered span trees from another process (a shard
	// server's trace, stitched in by the router's remote client).  They are
	// render-only: Each and the stage-histogram folds never see them, so a
	// remote "parse" span cannot double-count into local stage aggregates.
	grafts []*Node
}

// Trace is the span tree of one request.  A nil *Trace is valid and inert.
type Trace struct {
	root *Span
}

// New starts a trace whose root span is named name.
func New(name string) *Trace {
	return &Trace{root: &Span{name: name, start: time.Now()}}
}

// Root returns the trace's root span, nil for a nil trace.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span (child spans end themselves).  It is safe to
// call more than once; the first call wins.
func (t *Trace) Finish() {
	if t != nil {
		t.root.End()
	}
}

// Child opens a sub-span of s.  It returns nil when s is nil, so an
// untraced call chain stays allocation-free.  Safe for concurrent use —
// the corpus fan-out opens one child per shard goroutine.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span.  The first End wins; later calls are no-ops, so a
// deferred End after an explicit one is harmless.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Ended reports whether the span has been closed.
func (s *Span) Ended() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.end.IsZero()
}

// Set attaches (or overwrites) a string attribute.
func (s *Span) Set(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int) { s.Set(key, strconv.Itoa(v)) }

// SetErr records err under the "error" key; a nil err is a no-op.
func (s *Span) SetErr(err error) {
	if s == nil || err == nil {
		return
	}
	s.Set("error", err.Error())
}

// Graft attaches a span tree rendered by another process as a child of s —
// how a router stitches a shard server's ?debug=trace output under the
// local span for that shard.  The grafted tree keeps its internal timing;
// when rendered, its offsets are shifted to start where s starts (clock
// skew and network delay between the processes are unknowable, so aligning
// the remote root with the local span is the honest convention).  Grafts
// appear only in rendered output (Render), never in Each — remote
// stages must not fold into local stage histograms.  Safe on nil and for
// concurrent use, like every Span method.
func (s *Span) Graft(n *Node) {
	if s == nil || n == nil {
		return
	}
	s.mu.Lock()
	s.grafts = append(s.grafts, n)
	s.mu.Unlock()
}

// Start returns the span's start time, the zero time for nil.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Name returns the span's name, "" for nil.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Attr returns the value of the named attribute, "" when absent.
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Duration returns the span's wall-clock time: end-start once ended, the
// time elapsed so far while still open, 0 for nil.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.start)
	}
	return end.Sub(s.start)
}

// Each visits s and every descendant, parent before children.  Children
// are visited in creation order.
func (s *Span) Each(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	s.mu.Lock()
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		c.Each(fn)
	}
}

// Each visits every span of the trace, parent before children.
func (t *Trace) Each(fn func(*Span)) { t.Root().Each(fn) }

// ------------------------------------------------------------------ context

type ctxKey struct{}

// ContextWith returns ctx with sp as the active span; Start hangs children
// off the active span.  A nil sp returns ctx unchanged, so untraced code
// paths allocate nothing.
func ContextWith(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the active span, nil when the context is untraced.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// Start opens a child of the context's active span and returns it plus a
// context with the child active, so deeper stages nest under it.  On an
// untraced context it returns (nil, ctx): the off path is one context
// lookup and a nil check.
func Start(ctx context.Context, name string) (*Span, context.Context) {
	parent := FromContext(ctx)
	if parent == nil {
		return nil, ctx
	}
	sp := parent.Child(name)
	return sp, context.WithValue(ctx, ctxKey{}, sp)
}

// StartLeaf opens a child of the context's active span without deriving a
// new context — for pipeline stages that never nest further spans (a join, a
// ranking pass, a merge).  It skips Start's context allocation, which
// matters on the traced path: leaf stages dominate a trace's span count.
func StartLeaf(ctx context.Context, name string) *Span {
	return FromContext(ctx).Child(name)
}

// ---------------------------------------------------------------- rendering

// Node is the JSON shape of one rendered span: the v1 response envelope's
// "trace" field and the slow-query log both carry this tree.
type Node struct {
	Name string `json:"name"`
	// StartMS is the span's start offset from the trace root, milliseconds.
	StartMS float64 `json:"startMs"`
	// DurationMS is the span's wall-clock time in milliseconds.  Spans still
	// open when rendered report the time elapsed so far.
	DurationMS float64           `json:"durationMs"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []*Node           `json:"children,omitempty"`
}

// Render materializes the trace as a Node tree, nil for a nil trace.
func (t *Trace) Render() *Node {
	if t == nil {
		return nil
	}
	return t.root.render(t.root.start)
}

func (s *Span) render(origin time.Time) *Node {
	s.mu.Lock()
	n := &Node{
		Name:       s.name,
		StartMS:    durMS(s.start.Sub(origin)),
		DurationMS: durMS(s.lockedDuration()),
	}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			n.Attrs[a.Key] = a.Value
		}
	}
	kids := append([]*Span(nil), s.children...)
	grafts := append([]*Node(nil), s.grafts...)
	s.mu.Unlock()
	for _, c := range kids {
		n.Children = append(n.Children, c.render(origin))
	}
	for _, g := range grafts {
		n.Children = append(n.Children, shiftNode(g, n.StartMS))
	}
	return n
}

// shiftNode deep-copies a grafted node tree with every StartMS offset by
// delta — re-basing a remote trace's internal offsets onto the local
// timeline of the span it was grafted under.
func shiftNode(g *Node, delta float64) *Node {
	out := &Node{
		Name:       g.Name,
		StartMS:    g.StartMS + delta,
		DurationMS: g.DurationMS,
		Attrs:      g.Attrs,
	}
	for _, c := range g.Children {
		out.Children = append(out.Children, shiftNode(c, delta))
	}
	return out
}

// lockedDuration is Duration with s.mu already held.
func (s *Span) lockedDuration() time.Duration {
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

func durMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// Tree renders the trace as an indented multi-line text tree — the REPL's
// :trace output.
func (t *Trace) Tree() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	t.root.tree(&b, 0)
	return b.String()
}

func (s *Span) tree(b *strings.Builder, depth int) {
	s.mu.Lock()
	fmt.Fprintf(b, "%s%s %.3fms", strings.Repeat("  ", depth), s.name, durMS(s.lockedDuration()))
	if len(s.attrs) > 0 {
		attrs := make([]string, len(s.attrs))
		for i, a := range s.attrs {
			attrs[i] = a.Key + "=" + a.Value
		}
		sort.Strings(attrs)
		fmt.Fprintf(b, "  [%s]", strings.Join(attrs, " "))
	}
	b.WriteByte('\n')
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		c.tree(b, depth+1)
	}
}

// Compact renders the trace on one line —
// "query 12.3ms (parse 0.1ms; fanout 9.8ms (shard 9.1ms); merge 1.2ms)" —
// the shape the slow-query log embeds.
func (t *Trace) Compact() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	t.root.compact(&b)
	return b.String()
}

func (s *Span) compact(b *strings.Builder) {
	s.mu.Lock()
	fmt.Fprintf(b, "%s %.3fms", s.name, durMS(s.lockedDuration()))
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if len(kids) == 0 {
		return
	}
	b.WriteString(" (")
	for i, c := range kids {
		if i > 0 {
			b.WriteString("; ")
		}
		c.compact(b)
	}
	b.WriteString(")")
}
