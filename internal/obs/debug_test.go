package obs

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func TestDebugMuxHealthAndReady(t *testing.T) {
	var notReady atomic.Bool
	mux := DebugMux(DebugOptions{Ready: func() error {
		if notReady.Load() {
			return errors.New("corpus x: reindex in progress")
		}
		return nil
	}})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	if code, body := get("/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz (ready): %d %q", code, body)
	}

	// Readiness flips while the ready hook reports a mutation in flight.
	notReady.Store(true)
	if code, body := get("/readyz"); code != 503 || !strings.Contains(body, "reindex in progress") {
		t.Fatalf("/readyz (not ready): %d %q", code, body)
	}
	notReady.Store(false)
	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("/readyz did not flip back: %d", code)
	}
}

func TestDebugMuxBuildInfo(t *testing.T) {
	srv := httptest.NewServer(DebugMux(DebugOptions{}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/buildinfo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Test binaries may or may not embed build info; both statuses are
	// legitimate, but the payload must be JSON either way.
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("buildinfo is not JSON (status %d): %v", resp.StatusCode, err)
	}
	if resp.StatusCode == 200 && v["goVersion"] == "" {
		t.Fatalf("buildinfo missing goVersion: %v", v)
	}
}

func TestDebugMuxPprofIndex(t *testing.T) {
	srv := httptest.NewServer(DebugMux(DebugOptions{}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof index: %d", resp.StatusCode)
	}
}
