package obs

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// The trace store is the retention half of the observability plane: spans
// answer "where did this request's time go", the store answers it for a
// request that finished minutes ago.  Every request roots a trace (cheap —
// see the package comment), and when it finishes the server offers the
// trace here.  The store keeps it only if it is *interesting* — it errored,
// was answered partially, hit quarantined shards, fired a hedge, or crossed
// the slow threshold — plus a small uniform sample of everything else, so an
// operator can compare a pathological trace against the contemporaneous
// normal shape.  Retention is bounded: two rings (interesting and sampled)
// evict oldest-first, so memory is fixed whatever the traffic.
//
// GET /api/v1/traces lists retained records, GET /api/v1/traces/{requestId}
// fetches one with its full span tree — the tree a ?debug=trace request
// would have returned, including span trees grafted from remote shard
// servers.

// TraceRecord is one retained request trace: the classification facts used
// for retention and filtering, plus the rendered span tree.
type TraceRecord struct {
	// RequestID joins the record with access logs, slow-query logs and the
	// X-Request-Id response header the client saw.
	RequestID string `json:"requestId"`
	// Endpoint is the root span name — "query" or "complete".
	Endpoint string `json:"endpoint"`
	// Dataset echoes the request's ?dataset= selector, "" for the default.
	Dataset string `json:"dataset,omitempty"`
	// Start is when the trace was rooted.
	Start time.Time `json:"start"`
	// DurationMS is the root span's wall-clock time in milliseconds.
	DurationMS float64 `json:"durationMs"`
	// Error is the failure that ended the request, "" on success.
	Error string `json:"error,omitempty"`
	// Partial marks a degraded answer (some shards failed, survivors served).
	Partial bool `json:"partial,omitempty"`
	// Quarantined marks a request refused on open shard circuit breakers.
	Quarantined bool `json:"quarantined,omitempty"`
	// Hedged marks a request whose fan-out fired at least one hedge RPC.
	Hedged bool `json:"hedged,omitempty"`
	// Slow marks a trace retained for crossing the store's slow threshold.
	Slow bool `json:"slow,omitempty"`
	// Sampled marks a trace retained only by the uniform sample of
	// uninteresting traffic.
	Sampled bool `json:"sampled,omitempty"`
	// Trace is the rendered span tree; omitted in list responses (fetch the
	// record by request ID for the tree).
	Trace *Node `json:"trace,omitempty"`
}

// interesting reports whether the record must be retained unconditionally.
func (rec *TraceRecord) interesting() bool {
	return rec.Error != "" || rec.Partial || rec.Quarantined || rec.Hedged || rec.Slow
}

// StoreConfig tunes a Store.  The zero value is the production default.
type StoreConfig struct {
	// Capacity bounds the total retained records; 0 means 512.  Three
	// quarters hold interesting traces, one quarter the uniform sample.
	Capacity int
	// SlowThreshold classifies a trace as slow (always retained); 0 disables
	// the slow classification.  Conventionally the server's slow-query log
	// threshold, so every logged slow query has a retrievable trace.
	SlowThreshold time.Duration
	// SampleEvery keeps one of every N uninteresting traces; 0 means 64,
	// negative disables the uniform sample entirely.
	SampleEvery int
}

// Store is a bounded tail-sampling trace store, safe for concurrent use.
type Store struct {
	slow        time.Duration
	sampleEvery int

	mu sync.Mutex
	// interesting and sampled are bounded FIFO rings of retained records;
	// byID indexes both for GET /api/v1/traces/{requestId}.
	interesting ring
	sampled     ring
	byID        map[string]*TraceRecord
	// boring counts uninteresting offers — the uniform sample's modulus.
	boring int64
	// offered and kept count all offers and retentions, for introspection.
	offered int64
	kept    int64
}

// ring is a fixed-capacity FIFO of trace records.
type ring struct {
	buf   []*TraceRecord
	start int // index of the oldest record
	n     int // live records
}

func (r *ring) push(rec *TraceRecord) (evicted *TraceRecord) {
	if len(r.buf) == 0 {
		return rec // zero capacity: nothing is ever retained
	}
	if r.n == len(r.buf) {
		evicted = r.buf[r.start]
		r.buf[r.start] = rec
		r.start = (r.start + 1) % len(r.buf)
		return evicted
	}
	r.buf[(r.start+r.n)%len(r.buf)] = rec
	r.n++
	return nil
}

// each visits the ring's records newest-first.
func (r *ring) each(fn func(*TraceRecord)) {
	for i := r.n - 1; i >= 0; i-- {
		fn(r.buf[(r.start+i)%len(r.buf)])
	}
}

// NewStore builds a trace store.
func NewStore(cfg StoreConfig) *Store {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = 512
	}
	sampleEvery := cfg.SampleEvery
	switch {
	case sampleEvery == 0:
		sampleEvery = 64
	case sampleEvery < 0:
		sampleEvery = 0 // sampling off
	}
	sampleCap := capacity / 4
	return &Store{
		slow:        cfg.SlowThreshold,
		sampleEvery: sampleEvery,
		interesting: ring{buf: make([]*TraceRecord, capacity-sampleCap)},
		sampled:     ring{buf: make([]*TraceRecord, sampleCap)},
		byID:        make(map[string]*TraceRecord, capacity),
	}
}

// Offer presents a finished trace for retention.  rec carries the
// classification facts (error, partial, quarantined, hedged); the store
// stamps the slow and sampled classifications itself.  The span tree is
// rendered only when the record is retained — a dropped trace costs a
// classification and one counter.  It reports whether the record was kept.
func (s *Store) Offer(rec *TraceRecord, tr *Trace) bool {
	if s == nil || tr == nil {
		return false
	}
	if s.slow > 0 && rec.DurationMS >= float64(s.slow.Microseconds())/1000 {
		rec.Slow = true
	}
	s.mu.Lock()
	s.offered++
	target := &s.interesting
	if !rec.interesting() {
		if s.sampleEvery == 0 {
			s.mu.Unlock()
			return false
		}
		s.boring++
		if s.boring%int64(s.sampleEvery) != 0 {
			s.mu.Unlock()
			return false
		}
		rec.Sampled = true
		target = &s.sampled
	}
	if len(target.buf) == 0 { // a tiny capacity can zero the sample ring
		s.mu.Unlock()
		return false
	}
	s.kept++
	s.mu.Unlock()

	// Render outside the lock: the tree walk takes the trace's own locks and
	// its cost must not serialize unrelated offers.
	rec.Trace = tr.Render()

	s.mu.Lock()
	defer s.mu.Unlock()
	if evicted := target.push(rec); evicted != nil && s.byID[evicted.RequestID] == evicted {
		delete(s.byID, evicted.RequestID)
	}
	if rec.RequestID != "" {
		s.byID[rec.RequestID] = rec
	}
	return true
}

// Get returns the retained record with the full span tree, nil when the
// request ID is unknown (never offered, classified out, or evicted).
func (s *Store) Get(requestID string) *TraceRecord {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byID[requestID]
}

// Filter selects records for List.  Zero values match everything.
type Filter struct {
	// Stage retains only traces containing a span (grafted remote spans
	// included) whose name equals or is prefixed by this value — "fanout",
	// "join:" and "rpc" all work.
	Stage string
	// MinDuration drops traces faster than this.
	MinDuration time.Duration
	// ErrorsOnly keeps only traces that ended in an error.
	ErrorsOnly bool
	// Endpoint restricts to one root span name ("query", "complete").
	Endpoint string
	// Limit caps the result count; 0 means 100.
	Limit int
}

// List returns matching records newest-first, without their span trees
// (summaries; fetch the tree with Get).  retained is the total record count
// before filtering.
func (s *Store) List(f Filter) (records []TraceRecord, retained int) {
	if s == nil {
		return nil, 0
	}
	limit := f.Limit
	if limit <= 0 {
		limit = 100
	}
	minMS := float64(f.MinDuration.Microseconds()) / 1000
	s.mu.Lock()
	defer s.mu.Unlock()
	retained = s.interesting.n + s.sampled.n
	var all []*TraceRecord
	s.interesting.each(func(rec *TraceRecord) { all = append(all, rec) })
	s.sampled.each(func(rec *TraceRecord) { all = append(all, rec) })
	sort.SliceStable(all, func(i, j int) bool { return all[i].Start.After(all[j].Start) })
	for _, rec := range all {
		if len(records) >= limit {
			break
		}
		if f.ErrorsOnly && rec.Error == "" {
			continue
		}
		if f.Endpoint != "" && rec.Endpoint != f.Endpoint {
			continue
		}
		if rec.DurationMS < minMS {
			continue
		}
		if f.Stage != "" && !hasStage(rec.Trace, f.Stage) {
			continue
		}
		summary := *rec
		summary.Trace = nil // list responses stay small; Get serves the tree
		records = append(records, summary)
	}
	return records, retained
}

// Stats reports the store's lifetime offer/keep counters and live size.
func (s *Store) Stats() (offered, kept, retained int64) {
	if s == nil {
		return 0, 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.offered, s.kept, int64(s.interesting.n + s.sampled.n)
}

// hasStage reports whether the rendered tree contains a span whose name
// matches stage exactly or by prefix — grafted remote subtrees included,
// which is the point: "did this request reach shard-server stage X".
func hasStage(n *Node, stage string) bool {
	if n == nil {
		return false
	}
	if n.Name == stage || strings.HasPrefix(n.Name, stage) {
		return true
	}
	for _, c := range n.Children {
		if hasStage(c, stage) {
			return true
		}
	}
	return false
}
