package obs

import (
	"fmt"
	"testing"
	"time"
)

// offer feeds one classified record with a minimal finished trace.
func offer(s *Store, rec TraceRecord) bool {
	tr := New("query")
	sp := tr.Root().Child("fanout")
	sp.Child("join:twigstack").End()
	sp.End()
	tr.Finish()
	if rec.Endpoint == "" {
		rec.Endpoint = "query"
	}
	return s.Offer(&rec, tr)
}

func TestStoreRetainsInteresting(t *testing.T) {
	s := NewStore(StoreConfig{Capacity: 8, SampleEvery: -1})
	cases := []TraceRecord{
		{RequestID: "err", Error: "boom"},
		{RequestID: "partial", Partial: true},
		{RequestID: "quarantined", Quarantined: true},
		{RequestID: "hedged", Hedged: true},
	}
	for _, rec := range cases {
		if !offer(s, rec) {
			t.Fatalf("interesting record %q dropped", rec.RequestID)
		}
	}
	if offer(s, TraceRecord{RequestID: "boring"}) {
		t.Fatal("boring record kept with sampling disabled")
	}
	for _, rec := range cases {
		got := s.Get(rec.RequestID)
		if got == nil {
			t.Fatalf("Get(%q) = nil", rec.RequestID)
		}
		if got.Trace == nil || len(got.Trace.Children) == 0 {
			t.Fatalf("retained record %q has no span tree", rec.RequestID)
		}
	}
	if s.Get("boring") != nil {
		t.Fatal("dropped record is retrievable")
	}
	offered, kept, retained := s.Stats()
	if offered != 5 || kept != 4 || retained != 4 {
		t.Fatalf("Stats() = %d/%d/%d, want 5/4/4", offered, kept, retained)
	}
}

func TestStoreSlowThreshold(t *testing.T) {
	s := NewStore(StoreConfig{Capacity: 8, SlowThreshold: 100 * time.Millisecond, SampleEvery: -1})
	if offer(s, TraceRecord{RequestID: "fast", DurationMS: 5}) {
		t.Fatal("fast trace kept")
	}
	if !offer(s, TraceRecord{RequestID: "slow", DurationMS: 250}) {
		t.Fatal("slow trace dropped")
	}
	if rec := s.Get("slow"); rec == nil || !rec.Slow {
		t.Fatalf("slow trace not stamped: %+v", rec)
	}
}

func TestStoreUniformSample(t *testing.T) {
	s := NewStore(StoreConfig{Capacity: 16, SampleEvery: 4})
	kept := 0
	for i := 0; i < 16; i++ {
		if offer(s, TraceRecord{RequestID: fmt.Sprintf("r%d", i)}) {
			kept++
		}
	}
	if kept != 4 {
		t.Fatalf("kept %d of 16 boring traces at SampleEvery=4, want 4", kept)
	}
	records, _ := s.List(Filter{})
	for _, rec := range records {
		if !rec.Sampled {
			t.Fatalf("record %q retained by sampling lacks the Sampled mark", rec.RequestID)
		}
	}
}

func TestStoreEviction(t *testing.T) {
	// Capacity 4 gives a 3-slot interesting ring (1 slot sample ring).
	s := NewStore(StoreConfig{Capacity: 4, SampleEvery: -1})
	for i := 0; i < 5; i++ {
		offer(s, TraceRecord{RequestID: fmt.Sprintf("e%d", i), Error: "boom"})
	}
	if s.Get("e0") != nil || s.Get("e1") != nil {
		t.Fatal("oldest records not evicted")
	}
	for _, id := range []string{"e2", "e3", "e4"} {
		if s.Get(id) == nil {
			t.Fatalf("recent record %q evicted", id)
		}
	}
	if _, _, retained := s.Stats(); retained != 3 {
		t.Fatalf("retained = %d, want 3", retained)
	}
}

func TestStoreListFilters(t *testing.T) {
	s := NewStore(StoreConfig{Capacity: 16, SampleEvery: -1})
	offer(s, TraceRecord{RequestID: "a", Error: "boom", DurationMS: 5})
	offer(s, TraceRecord{RequestID: "b", Partial: true, DurationMS: 80})
	offer(s, TraceRecord{RequestID: "c", Endpoint: "complete", Hedged: true, DurationMS: 3})

	if records, retained := s.List(Filter{}); len(records) != 3 || retained != 3 {
		t.Fatalf("unfiltered List = %d records, retained %d", len(records), retained)
	}
	if records, _ := s.List(Filter{ErrorsOnly: true}); len(records) != 1 || records[0].RequestID != "a" {
		t.Fatalf("ErrorsOnly = %+v", records)
	}
	if records, _ := s.List(Filter{MinDuration: 50 * time.Millisecond}); len(records) != 1 || records[0].RequestID != "b" {
		t.Fatalf("MinDuration = %+v", records)
	}
	if records, _ := s.List(Filter{Endpoint: "complete"}); len(records) != 1 || records[0].RequestID != "c" {
		t.Fatalf("Endpoint = %+v", records)
	}
	if records, _ := s.List(Filter{Stage: "join"}); len(records) != 3 {
		t.Fatalf("Stage prefix match = %d records, want 3", len(records))
	}
	if records, _ := s.List(Filter{Stage: "nope"}); len(records) != 0 {
		t.Fatalf("bogus stage matched %d records", len(records))
	}
	if records, _ := s.List(Filter{Limit: 2}); len(records) != 2 {
		t.Fatalf("Limit = %d records, want 2", len(records))
	}
	// Summaries stay lean; the tree comes from Get.
	if records, _ := s.List(Filter{}); records[0].Trace != nil {
		t.Fatal("List returned a span tree")
	}
}

func TestStoreStageMatchesGraftedSpans(t *testing.T) {
	s := NewStore(StoreConfig{Capacity: 8, SampleEvery: -1})
	tr := New("query")
	sp := tr.Root().Child("shard")
	sp.Graft(&Node{Name: "query", Children: []*Node{{Name: "join:twigstack"}}})
	sp.End()
	tr.Finish()
	s.Offer(&TraceRecord{RequestID: "g", Endpoint: "query", Hedged: true}, tr)

	if records, _ := s.List(Filter{Stage: "join"}); len(records) != 1 {
		t.Fatal("stage filter missed a grafted remote span")
	}
}

func TestStoreNilSafe(t *testing.T) {
	var s *Store
	if s.Offer(&TraceRecord{}, New("query")) {
		t.Fatal("nil store kept a record")
	}
	if s.Get("x") != nil {
		t.Fatal("nil store returned a record")
	}
	if records, retained := s.List(Filter{}); records != nil || retained != 0 {
		t.Fatal("nil store listed records")
	}
}
