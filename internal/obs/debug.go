package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
)

// DebugOptions configures the operational endpoints of DebugMux.
type DebugOptions struct {
	// Ready reports whether the process can serve traffic; nil means always
	// ready.  A non-nil error answers /readyz with 503 and the error text —
	// e.g. a corpus mid-reindex or a catalog with an empty snapshot.
	Ready func() error
	// Degraded, when non-nil and returning non-empty, marks a ready instance
	// as impaired (e.g. quarantined shards): /readyz still answers 200 — the
	// instance should keep taking traffic — but the body reads
	// "ready (degraded): <reason>" so orchestration and humans can see it.
	Degraded func() string
	// Burning, when non-nil and returning non-empty, marks a ready instance
	// as burning its error budget too fast (see internal/slo): /readyz
	// answers 200 with "ready (slo-burning): <objectives>".  Degraded takes
	// precedence when both fire — a quarantined shard usually explains the
	// burn.
	Burning func() string
}

// DebugMux builds the operational mux served on the -debug-addr listener:
//
//	/debug/pprof/...  net/http/pprof profiles (CPU, heap, goroutine, trace)
//	/healthz          liveness — 200 as long as the process serves requests
//	/readyz           readiness — 200 when Ready() is nil, 503 otherwise
//	/buildinfo        module, version and VCS metadata from ReadBuildInfo
//
// The mux is intended for a loopback or cluster-internal listener, separate
// from the public API address: pprof exposes internals and must never face
// users.
func DebugMux(opts DebugOptions) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if opts.Ready != nil {
			if err := opts.Ready(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				w.Write([]byte("not ready: " + err.Error() + "\n"))
				return
			}
		}
		if opts.Degraded != nil {
			if msg := opts.Degraded(); msg != "" {
				w.Write([]byte("ready (degraded): " + msg + "\n"))
				return
			}
		}
		if opts.Burning != nil {
			if msg := opts.Burning(); msg != "" {
				w.Write([]byte("ready (slo-burning): " + msg + "\n"))
				return
			}
		}
		w.Write([]byte("ready\n"))
	})
	mux.HandleFunc("GET /buildinfo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"error": "build info unavailable"})
			return
		}
		settings := make(map[string]string, len(bi.Settings))
		for _, s := range bi.Settings {
			settings[s.Key] = s.Value
		}
		json.NewEncoder(w).Encode(map[string]any{
			"path":      bi.Path,
			"module":    bi.Main.Path,
			"version":   bi.Main.Version,
			"goVersion": bi.GoVersion,
			"settings":  settings,
		})
	})
	return mux
}
