package repl

import (
	"strings"
	"testing"

	"lotusx/internal/core"
)

const bibXML = `<dblp>
  <article key="a1">
    <author>Jiaheng Lu</author>
    <title>Holistic Twig Joins</title>
    <year>2005</year>
  </article>
  <article key="a2">
    <author>Chunbin Lin</author>
    <title>LotusX</title>
    <year>2012</year>
  </article>
</dblp>`

func runScript(t *testing.T, script string) string {
	t.Helper()
	e, err := core.FromReader("bib", strings.NewReader(bibXML))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := Run(e, strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestReplFullSession(t *testing.T) {
	out := runScript(t, `
sug . art
root article
sug 0 / a
add 0 / author
val 1 jia
pred 1 = jiaheng lu
add 0 / title
out 2
show
xquery
run 5
quit
`)
	for _, want := range []string{
		"article",        // root suggestion
		"author",         // child suggestion
		"jiaheng lu",     // value candidate
		"//article",      // show
		"for $v0",        // xquery
		"(1 exact",       // run: one exact answer, rewrites fill the rest
		">>Jiaheng Lu<<", // highlight of the Eq predicate
		"Holistic",       // snippet
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReplOneShotQueryAndRewrite(t *testing.T) {
	out := runScript(t, `
query //article/autor
`)
	if !strings.Contains(out, "[via //article/author]") {
		t.Errorf("rewrite annotation missing:\n%s", out)
	}
}

func TestReplDeleteAndErrors(t *testing.T) {
	out := runScript(t, `
root article
add 0 / year
del 1
show
add 1 / x
nonsense
pred 0 <> x
help
`)
	if !strings.Contains(out, "//article\n") {
		t.Errorf("show after delete wrong:\n%s", out)
	}
	if !strings.Contains(out, "unknown node handle") {
		t.Errorf("stale handle not reported:\n%s", out)
	}
	if !strings.Contains(out, "unknown command") {
		t.Errorf("bad command not reported:\n%s", out)
	}
	if !strings.Contains(out, "operator must be") {
		t.Errorf("bad operator not reported:\n%s", out)
	}
	if !strings.Contains(out, "commands (handles") {
		t.Errorf("help missing:\n%s", out)
	}
}

func TestReplArgumentErrors(t *testing.T) {
	out := runScript(t, `
root
root article
root again
add 0
add zz / x
sug 99 / a
val 0 zzz
run 0
query ]bad[
`)
	for _, want := range []string{
		"usage: root",
		"root already set",
		"usage: add",
		"bad handle",
		"unknown node handle", // suggesting under an unknown handle
		"(no values)",
		"bad k",
		"parse error",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
