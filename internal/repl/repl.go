// Package repl implements the terminal front-end of the demo: an
// interactive loop over a core.Session with the same interactions as the web
// GUI — grow the twig node by node, ask for position-aware candidates at any
// point, run the query, read ranked, highlighted answers.
package repl

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"lotusx/internal/complete"
	"lotusx/internal/core"
	"lotusx/internal/obs"
	"lotusx/internal/twig"
)

// REPL drives one interactive session.
type REPL struct {
	backend core.Backend
	session *core.Session
	out     *bufio.Writer
	// trace, when toggled on with :trace, prints the per-stage span tree of
	// every run/query evaluation — the terminal twin of ?debug=trace.
	trace bool
}

// Run reads commands from in and writes responses to out until EOF or the
// quit command.  It returns the first I/O error, if any.
func Run(engine *core.Engine, in io.Reader, out io.Writer) error {
	return RunBackend(engine, in, out)
}

// RunBackend is Run over any backend — a single engine or a sharded corpus;
// candidates and answers merge across shards transparently.
func RunBackend(b core.Backend, in io.Reader, out io.Writer) error {
	r := &REPL{backend: b, session: core.NewSession(b), out: bufio.NewWriter(out)}
	info := b.Info()
	if info.Shards > 1 {
		r.printf("lotusx: %s — %d shards, %d nodes, %d tags. Type 'help'.\n", info.Name, info.Shards, info.Nodes, info.Tags)
	} else {
		r.printf("lotusx: %s — %d nodes, %d tags. Type 'help'.\n", info.Name, info.Nodes, info.Tags)
	}
	r.out.Flush()

	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		r.dispatch(line)
		r.out.Flush()
	}
	r.out.Flush()
	return sc.Err()
}

func (r *REPL) printf(format string, args ...any) {
	fmt.Fprintf(r.out, format, args...)
}

func (r *REPL) dispatch(line string) {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	var err error
	switch cmd {
	case "help":
		r.help()
	case "root":
		err = r.cmdRoot(args)
	case "add":
		err = r.cmdAdd(args)
	case "sug":
		err = r.cmdSuggest(args)
	case "val":
		err = r.cmdValues(args)
	case "pred":
		err = r.cmdPred(line)
	case "out":
		err = r.cmdOut(args)
	case "del":
		err = r.cmdDel(args)
	case "show":
		err = r.cmdShow()
	case "xquery":
		err = r.cmdXQuery()
	case "run":
		err = r.cmdRun(args)
	case "query":
		err = r.cmdQuery(line)
	case ":trace":
		r.trace = !r.trace
		if r.trace {
			r.printf("tracing on: run/query print the per-stage span tree\n")
		} else {
			r.printf("tracing off\n")
		}
	default:
		err = fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
	if err != nil {
		r.printf("error: %v\n", err)
	}
}

func (r *REPL) help() {
	r.printf(`commands (handles are the #numbers printed by root/add):
  root <tag>                 start the twig (// axis)
  add <h> [/|//] <tag>       attach a child under handle h
  sug <h> [/|//] [prefix]    position-aware tag candidates under h
  val <h> [prefix]           value candidates for node h
  pred <h> = <text>          set an equality predicate ('contains' also works)
  out <h>                    mark h as the output node
  del <h>                    delete node h and its subtree
  show                       print the twig so far
  xquery                     print the equivalent XQuery
  run [k]                    evaluate (with rewriting) and print answers
  query <xpath>              one-shot query, bypassing the session
  :trace                     toggle per-query span traces (timing breakdown)
  quit
`)
}

func parseAxis(args []string) (twig.Axis, []string) {
	if len(args) > 0 {
		switch args[0] {
		case "/":
			return twig.Child, args[1:]
		case "//":
			return twig.Descendant, args[1:]
		}
	}
	return twig.Child, args
}

func handleArg(args []string) (int, []string, error) {
	if len(args) == 0 {
		return 0, nil, fmt.Errorf("missing node handle")
	}
	h, err := strconv.Atoi(strings.TrimPrefix(args[0], "#"))
	if err != nil {
		return 0, nil, fmt.Errorf("bad handle %q", args[0])
	}
	return h, args[1:], nil
}

func (r *REPL) cmdRoot(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: root <tag>")
	}
	h, err := r.session.Root(args[0], twig.Descendant)
	if err != nil {
		return err
	}
	r.printf("#%d = //%s\n", h, args[0])
	return nil
}

func (r *REPL) cmdAdd(args []string) error {
	h, rest, err := handleArg(args)
	if err != nil {
		return err
	}
	axis, rest := parseAxis(rest)
	if len(rest) != 1 {
		return fmt.Errorf("usage: add <h> [/|//] <tag>")
	}
	nh, err := r.session.AddNode(h, axis, rest[0])
	if err != nil {
		return err
	}
	r.printf("#%d = %s%s under #%d\n", nh, axis, rest[0], h)
	return nil
}

func (r *REPL) cmdSuggest(args []string) error {
	var cands []complete.Candidate
	var err error
	if len(args) == 0 || args[0] == "." {
		// Root suggestions.
		prefix := ""
		if len(args) > 1 {
			prefix = args[1]
		}
		cands, err = r.session.SuggestTags(complete.NewRoot, twig.Descendant, prefix, 8)
	} else {
		h, rest, herr := handleArg(args)
		if herr != nil {
			return herr
		}
		axis, rest := parseAxis(rest)
		prefix := ""
		if len(rest) > 0 {
			prefix = rest[0]
		}
		cands, err = r.session.SuggestTags(h, axis, prefix, 8)
	}
	if err != nil {
		return err
	}
	if len(cands) == 0 {
		r.printf("(no candidates)\n")
		return nil
	}
	for _, c := range cands {
		marker := ""
		if c.Fuzzy {
			marker = "  (did you mean?)"
		}
		r.printf("  %-20s %6d×%s\n", c.Text, c.Count, marker)
	}
	return nil
}

func (r *REPL) cmdValues(args []string) error {
	h, rest, err := handleArg(args)
	if err != nil {
		return err
	}
	prefix := ""
	if len(rest) > 0 {
		prefix = rest[0]
	}
	cands, err := r.session.SuggestValues(h, prefix, 8)
	if err != nil {
		return err
	}
	if len(cands) == 0 {
		r.printf("(no values)\n")
		return nil
	}
	for _, c := range cands {
		r.printf("  %-30q %6d×\n", c.Text, c.Count)
	}
	return nil
}

func (r *REPL) cmdPred(line string) error {
	// pred <h> = <text...>  |  pred <h> contains <text...>
	rest := strings.TrimSpace(strings.TrimPrefix(line, "pred"))
	fields := strings.SplitN(rest, " ", 3)
	if len(fields) < 3 {
		return fmt.Errorf("usage: pred <h> =|contains <text>")
	}
	h, err := strconv.Atoi(strings.TrimPrefix(fields[0], "#"))
	if err != nil {
		return fmt.Errorf("bad handle %q", fields[0])
	}
	op := twig.Eq
	if fields[1] == "contains" {
		op = twig.Contains
	} else if fields[1] != "=" {
		return fmt.Errorf("operator must be = or contains")
	}
	return r.session.SetPredicate(h, op, strings.TrimSpace(fields[2]))
}

func (r *REPL) cmdOut(args []string) error {
	h, _, err := handleArg(args)
	if err != nil {
		return err
	}
	return r.session.SetOutput(h)
}

func (r *REPL) cmdDel(args []string) error {
	h, _, err := handleArg(args)
	if err != nil {
		return err
	}
	return r.session.RemoveNode(h)
}

func (r *REPL) cmdShow() error {
	xp, err := r.session.XPath()
	if err != nil {
		return err
	}
	r.printf("%s\n", xp)
	return nil
}

func (r *REPL) cmdXQuery() error {
	xq, err := r.session.XQuery()
	if err != nil {
		return err
	}
	r.printf("%s\n", xq)
	return nil
}

func (r *REPL) cmdRun(args []string) error {
	k := 5
	if len(args) > 0 {
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 1 {
			return fmt.Errorf("bad k %q", args[0])
		}
		k = n
	}
	tr, ctx := r.startTrace()
	res, err := r.session.RunHitsContext(ctx, core.SearchOptions{K: k, Rewrite: true, SnippetMax: 200})
	if err != nil {
		return err
	}
	r.printHits(res)
	r.printTrace(tr)
	return nil
}

// startTrace begins a span tree for one evaluation when :trace is on.
func (r *REPL) startTrace() (*obs.Trace, context.Context) {
	if !r.trace {
		return nil, context.Background()
	}
	tr := obs.New("query")
	return tr, obs.ContextWith(context.Background(), tr.Root())
}

// printTrace finishes and prints the span tree, if one was recorded.
func (r *REPL) printTrace(tr *obs.Trace) {
	if tr == nil {
		return
	}
	tr.Finish()
	r.printf("%s", tr.Tree())
}

func (r *REPL) cmdQuery(line string) error {
	text := strings.TrimSpace(strings.TrimPrefix(line, "query"))
	if text == "" {
		return fmt.Errorf("usage: query <xpath>")
	}
	tr, ctx := r.startTrace()
	sp := obs.StartLeaf(ctx, "parse")
	q, err := twig.Parse(text)
	sp.SetErr(err)
	sp.End()
	if err != nil {
		return err
	}
	res, err := r.backend.SearchHits(ctx, q, core.SearchOptions{K: 5, Rewrite: true, SnippetMax: 200})
	if err != nil {
		return err
	}
	r.printHits(res)
	r.printTrace(tr)
	return nil
}

func (r *REPL) printHits(res *core.HitResult) {
	r.printf("%d answers (%d exact, %d rewrites tried) in %v\n",
		len(res.Hits), res.Exact, res.RewritesTried, res.Elapsed.Round(10_000))
	if res.Partial {
		r.printf("PARTIAL: %d of %d shard(s) failed (%s) — answers cover the surviving shards\n",
			len(res.FailedShards), res.Shards, strings.Join(res.FailedShards, ", "))
	}
	for i, h := range res.Hits {
		r.printf("#%d  %s  score=%.3f", i+1, h.Path, h.Score)
		if res.Shards > 1 && h.Shard != "" {
			r.printf("  [shard %s]", h.Shard)
		}
		if h.Rewrite != "" {
			r.printf("  [via %s]", h.Rewrite)
		}
		r.printf("\n")
		for _, hl := range h.Highlights {
			r.printf("    %s: %s\n", hl.Tag, core.Underline(hl.Value, hl.Spans))
		}
		r.printf("    %s\n", strings.ReplaceAll(strings.TrimSpace(h.Snippet), "\n", "\n    "))
	}
}
