package metrics

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Prometheus text-format exposition (version 0.0.4), hand-rolled so the
// serving layer scrapes without a client-library dependency.  Latencies are
// exported in seconds (the Prometheus base unit); histogram buckets reuse
// the fixed exponential bounds of Histogram, cumulated per the exposition
// contract, with the overflow bucket folded into +Inf.  Because Export
// derives the sample count from the bucket reads themselves, the
// `_count == _bucket{le="+Inf"}` invariant holds exactly even under
// concurrent load.

// WritePrometheus renders every registered metric family to w.  Families
// and label values are emitted in sorted order so the output is
// deterministic and diffable.
func (r *Registry) WritePrometheus(w io.Writer) {
	// Copy the maps under the read lock, then render lock-free: the values
	// are themselves concurrent-safe and live forever once registered.
	r.mu.RLock()
	uptime := time.Since(r.start).Seconds()
	endpoints := make(map[string]*Endpoint, len(r.endpoints))
	for k, v := range r.endpoints {
		endpoints[k] = v
	}
	algos := make(map[string]*Histogram, len(r.algos))
	for k, v := range r.algos {
		algos[k] = v
	}
	stages := make(map[string]*Histogram, len(r.stages))
	for k, v := range r.stages {
		stages[k] = v
	}
	corpora := make(map[string]*CorpusMetrics, len(r.corpora))
	for k, v := range r.corpora {
		corpora[k] = v
	}
	caches := make(map[string]*CacheMetrics, len(r.caches))
	for k, v := range r.caches {
		caches[k] = v
	}
	remotes := make(map[string]*RemoteMetrics, len(r.remotes))
	for k, v := range r.remotes {
		remotes[k] = v
	}
	ingest := r.ingest
	lifecycle := r.lifecycle
	admission := r.admission
	cluster := r.cluster
	r.mu.RUnlock()

	fmt.Fprintf(w, "# HELP lotusx_uptime_seconds Time since the metrics registry was created.\n")
	fmt.Fprintf(w, "# TYPE lotusx_uptime_seconds gauge\n")
	fmt.Fprintf(w, "lotusx_uptime_seconds %s\n", fmtFloat(uptime))

	epNames := sortedKeys(endpoints)
	counterFamily(w, "lotusx_endpoint_requests_total", "Requests routed to the endpoint.",
		epNames, func(n string) int64 { return endpoints[n].Requests.Load() }, "endpoint")
	counterFamily(w, "lotusx_endpoint_errors_total", "Responses with status >= 400.",
		epNames, func(n string) int64 { return endpoints[n].Errors.Load() }, "endpoint")
	counterFamily(w, "lotusx_endpoint_timeouts_total", "Responses that hit the per-request deadline (504).",
		epNames, func(n string) int64 { return endpoints[n].Timeouts.Load() }, "endpoint")
	counterFamily(w, "lotusx_endpoint_shed_total", "Requests refused by admission control: the per-client rate limiter (429), the in-flight limiter and the drain gate (503).",
		epNames, func(n string) int64 { return endpoints[n].Shed.Load() }, "endpoint")
	histogramFamily(w, "lotusx_endpoint_latency_seconds", "Request latency by endpoint.",
		epNames, func(n string) Export { return endpoints[n].Latency.Export() }, "endpoint")

	histogramFamily(w, "lotusx_algorithm_latency_seconds", "Query latency by resolved join algorithm.",
		sortedKeys(algos), func(n string) Export { return algos[n].Export() }, "algorithm")

	histogramFamily(w, "lotusx_stage_latency_seconds", "Pipeline stage latency folded from query traces.",
		sortedKeys(stages), func(n string) Export { return stages[n].Export() }, "stage")

	if len(corpora) > 0 {
		cNames := sortedKeys(corpora)
		gaugeFamily(w, "lotusx_corpus_shards", "Shard count of the current corpus snapshot.",
			cNames, func(n string) int64 { return int64(corpora[n].Shards()) }, "corpus")
		gaugeFamily(w, "lotusx_corpus_delta_shards", "Async-ingested delta shards awaiting compaction.",
			cNames, func(n string) int64 { return int64(corpora[n].DeltaShards()) }, "corpus")
		counterFamily(w, "lotusx_corpus_swaps_total", "Snapshot publishes (ingest, remove, reindex).",
			cNames, func(n string) int64 { return corpora[n].Swaps.Load() }, "corpus")
		counterFamily(w, "lotusx_corpus_searches_total", "Fan-out searches served.",
			cNames, func(n string) int64 { return corpora[n].Searches.Load() }, "corpus")
		counterFamily(w, "lotusx_corpus_partial_searches_total", "Searches answered from a strict subset of shards (degrade policy).",
			cNames, func(n string) int64 { return corpora[n].Partial.Load() }, "corpus")
		counterFamily(w, "lotusx_corpus_shard_failures_total", "Per-shard evaluation failures, including breaker-quarantine skips.",
			cNames, func(n string) int64 { return corpora[n].ShardFailures.Load() }, "corpus")
		counterFamily(w, "lotusx_corpus_breaker_trips_total", "Circuit-breaker closed-to-open transitions.",
			cNames, func(n string) int64 { return corpora[n].BreakerTrips.Load() }, "corpus")
		gaugeFamily(w, "lotusx_corpus_quarantined_shards", "Shards whose circuit breaker is currently not closed.",
			cNames, func(n string) int64 { return corpora[n].Quarantined() }, "corpus")
		gaugeFamily(w, "lotusx_corpus_resident_bytes", "Resident index-substrate bytes across the snapshot's local shards.",
			cNames, func(n string) int64 { return corpora[n].residentBytes.Load() }, "corpus")
		gaugeFamily(w, "lotusx_corpus_raw_bytes", "Raw-substrate-equivalent bytes the snapshot's indexes would occupy uncompressed.",
			cNames, func(n string) int64 { return corpora[n].rawBytes.Load() }, "corpus")
		gaugeFamily(w, "lotusx_corpus_index_shapes", "Distinct subtree shapes stored by the DAG-compressed shards.",
			cNames, func(n string) int64 { return corpora[n].indexShapes.Load() }, "corpus")
		gaugeFamily(w, "lotusx_corpus_index_instances", "Shared-subtree occurrences the stored shapes stand for.",
			cNames, func(n string) int64 { return corpora[n].indexInstances.Load() }, "corpus")
		gaugeFamily(w, "lotusx_corpus_compressed_shards", "Shards whose index runs on the DAG-compressed substrate.",
			cNames, func(n string) int64 { return corpora[n].compressedShards.Load() }, "corpus")
		histogramFamily(w, "lotusx_corpus_fanout_latency_seconds", "Wall-clock of the parallel per-shard fan-out phase.",
			cNames, func(n string) Export { return corpora[n].Fanout.Export() }, "corpus")
		histogramFamily(w, "lotusx_corpus_merge_latency_seconds", "Wall-clock of the global merge and render phase.",
			cNames, func(n string) Export { return corpora[n].Merge.Export() }, "corpus")

		// Per-shard latency: two labels, flattened to "corpus\x00shard" keys
		// so the shared family renderer applies.
		type shardKey struct{ corpus, shard string }
		var keys []shardKey
		hists := make(map[shardKey]*Histogram)
		for _, cn := range cNames {
			for sn, h := range corpora[cn].shardHistograms() {
				k := shardKey{cn, sn}
				keys = append(keys, k)
				hists[k] = h
			}
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].corpus != keys[j].corpus {
				return keys[i].corpus < keys[j].corpus
			}
			return keys[i].shard < keys[j].shard
		})
		if len(keys) > 0 {
			fmt.Fprintf(w, "# HELP lotusx_corpus_shard_latency_seconds Per-shard query latency within the fan-out.\n")
			fmt.Fprintf(w, "# TYPE lotusx_corpus_shard_latency_seconds histogram\n")
			for _, k := range keys {
				writeHistogram(w, "lotusx_corpus_shard_latency_seconds",
					fmt.Sprintf(`corpus=%q,shard=%q`, k.corpus, k.shard),
					hists[k].Export())
			}
		}
	}

	if len(caches) > 0 {
		names := sortedKeys(caches)
		counterFamily(w, "lotusx_cache_hits_total", "Cache lookups answered from a stored entry.",
			names, func(n string) int64 { return caches[n].Hits.Load() }, "cache")
		counterFamily(w, "lotusx_cache_misses_total", "Cache lookups that ran the computation.",
			names, func(n string) int64 { return caches[n].Misses.Load() }, "cache")
		counterFamily(w, "lotusx_cache_evictions_total", "Cache entries dropped to stay within the byte budget.",
			names, func(n string) int64 { return caches[n].Evictions.Load() }, "cache")
		counterFamily(w, "lotusx_cache_singleflight_waits_total", "Cache lookups that waited on an identical in-flight computation.",
			names, func(n string) int64 { return caches[n].SingleflightWaits.Load() }, "cache")
		gaugeFamily(w, "lotusx_cache_entries", "Live entries stored in the cache.",
			names, func(n string) int64 { return caches[n].Entries() }, "cache")
		gaugeFamily(w, "lotusx_cache_bytes", "Byte cost of the entries stored in the cache.",
			names, func(n string) int64 { return caches[n].Bytes() }, "cache")
	}

	if len(remotes) > 0 {
		names := sortedKeys(remotes)
		counterFamily(w, "lotusx_remote_searches_total", "Logical-shard searches routed to remote shard backends.",
			names, func(n string) int64 { return remotes[n].Searches.Load() }, "cluster")
		counterFamily(w, "lotusx_remote_hedges_fired_total", "Backup-replica requests launched after the hedge delay.",
			names, func(n string) int64 { return remotes[n].HedgesFired.Load() }, "cluster")
		counterFamily(w, "lotusx_remote_hedge_wins_total", "Searches answered first by a hedged (backup) request.",
			names, func(n string) int64 { return remotes[n].HedgeWins.Load() }, "cluster")
		counterFamily(w, "lotusx_remote_hedge_losses_total", "Searches where a hedge fired but the primary answered first.",
			names, func(n string) int64 { return remotes[n].HedgeLosses.Load() }, "cluster")
		counterFamily(w, "lotusx_remote_failovers_total", "Immediate next-replica launches after a replica error.",
			names, func(n string) int64 { return remotes[n].Failovers.Load() }, "cluster")
		counterFamily(w, "lotusx_remote_rpc_errors_total", "Individual replica RPC failures.",
			names, func(n string) int64 { return remotes[n].RPCErrors.Load() }, "cluster")

		// Per-replica RPC latency: two labels, rendered like the per-shard
		// corpus family above.
		type repKey struct{ cluster, replica string }
		var keys []repKey
		hists := make(map[repKey]*Histogram)
		for _, cn := range names {
			m := remotes[cn]
			m.mu.RLock()
			for rn, h := range m.replicas {
				k := repKey{cn, rn}
				keys = append(keys, k)
				hists[k] = h
			}
			m.mu.RUnlock()
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].cluster != keys[j].cluster {
				return keys[i].cluster < keys[j].cluster
			}
			return keys[i].replica < keys[j].replica
		})
		if len(keys) > 0 {
			fmt.Fprintf(w, "# HELP lotusx_remote_replica_latency_seconds Per-replica RPC latency, failed RPCs included.\n")
			fmt.Fprintf(w, "# TYPE lotusx_remote_replica_latency_seconds histogram\n")
			for _, k := range keys {
				writeHistogram(w, "lotusx_remote_replica_latency_seconds",
					fmt.Sprintf(`cluster=%q,replica=%q`, k.cluster, k.replica),
					hists[k].Export())
			}
		}
	}

	if ingest != nil {
		scalarCounter(w, "lotusx_ingest_jobs_enqueued_total", "Ingest jobs accepted into the queue.", ingest.Enqueued.Load())
		scalarCounter(w, "lotusx_ingest_jobs_deduped_total", "Enqueues collapsed into an identical active job.", ingest.Deduped.Load())
		scalarCounter(w, "lotusx_ingest_jobs_rejected_total", "Enqueues refused because the queue was full.", ingest.Rejected.Load())
		scalarCounter(w, "lotusx_ingest_jobs_completed_total", "Ingest jobs that finished successfully.", ingest.Done.Load())
		scalarCounter(w, "lotusx_ingest_jobs_failed_total", "Ingest jobs that finished with an error.", ingest.Failed.Load())
		scalarGauge(w, "lotusx_ingest_queue_depth", "Jobs queued, not yet running.", ingest.Depth())
		scalarGauge(w, "lotusx_ingest_jobs_running", "Jobs currently on a worker.", ingest.Running())
		scalarHistogram(w, "lotusx_ingest_queue_wait_seconds", "Time from enqueue to worker pickup.", ingest.QueueWait.Export())
		scalarHistogram(w, "lotusx_ingest_job_duration_seconds", "Time from worker pickup to job finish.", ingest.Run.Export())
		scalarCounter(w, "lotusx_ingest_compactions_total", "Successful delta-compaction rounds.", ingest.Compactions.Load())
		scalarCounter(w, "lotusx_ingest_compaction_failures_total", "Delta-compaction rounds that errored.", ingest.CompactionFailures.Load())
		scalarCounter(w, "lotusx_ingest_compacted_shards_total", "Delta shards folded into base shards.", ingest.CompactedShards.Load())
		scalarHistogram(w, "lotusx_ingest_compaction_duration_seconds", "Wall-clock per compaction round.", ingest.CompactionRun.Export())
	}

	if lifecycle != nil {
		scalarGauge(w, "lotusx_lifecycle_draining", "1 while the server drains for shutdown (readyz answers draining, new work is refused).", lifecycle.Draining())
		scalarCounter(w, "lotusx_lifecycle_drain_rejected_total", "Requests refused with 503 while the server was draining.", lifecycle.DrainRejected.Load())
		scalarCounter(w, "lotusx_lifecycle_journal_accepted_total", "Ingest-journal accept records written (durable 202 promises).", lifecycle.JournalAccepted.Load())
		scalarCounter(w, "lotusx_lifecycle_journal_completed_total", "Ingest-journal terminal records written.", lifecycle.JournalCompleted.Load())
		scalarCounter(w, "lotusx_lifecycle_journal_replayed_total", "Pending journal records re-enqueued at startup.", lifecycle.JournalReplayed.Load())
		scalarGauge(w, "lotusx_lifecycle_journal_pending", "Accepted ingest jobs without a terminal journal record.", lifecycle.JournalPending())
		scalarCounter(w, "lotusx_lifecycle_spool_orphans_swept_total", "Orphaned ingest spool files removed at startup.", lifecycle.OrphansSwept.Load())
	}

	if admission != nil {
		scalarCounter(w, "lotusx_admission_allowed_total", "Requests that passed the per-client rate limiter.", admission.Allowed.Load())
		scalarCounter(w, "lotusx_admission_limited_total", "Requests refused with 429 + Retry-After by the per-client rate limiter.", admission.Limited.Load())
		scalarCounter(w, "lotusx_admission_evicted_total", "Idle client token buckets evicted from the limiter table.", admission.Evicted.Load())
		scalarGauge(w, "lotusx_admission_clients", "Live client token buckets in the limiter table.", admission.Clients())
		scalarCounter(w, "lotusx_admission_retry_budget_granted_total", "Hedges and failovers the router retry budget allowed.", admission.RetryBudgetGranted.Load())
		scalarCounter(w, "lotusx_admission_retry_budget_denied_total", "Hedges and failovers skipped because the retry budget was spent.", admission.RetryBudgetDenied.Load())
	}

	if cluster != nil {
		rows := cluster.rows()
		if len(rows) > 0 {
			writeClusterRows(w, rows)
		}
	}

	ps := processSnapshot()
	scalarGauge(w, "lotusx_process_goroutines", "Live goroutines in the serving process.", int64(ps.Goroutines))
	scalarGauge(w, "lotusx_process_heap_alloc_bytes", "Bytes of allocated heap objects.", int64(ps.HeapAllocBytes))
	scalarGauge(w, "lotusx_process_heap_sys_bytes", "Bytes of heap memory obtained from the OS.", int64(ps.HeapSysBytes))
	scalarCounter(w, "lotusx_process_gc_cycles_total", "Completed GC cycles.", int64(ps.GCCycles))
	scalarFloatCounter(w, "lotusx_process_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", ps.GCPauseTotalSeconds)
	version, goVersion, module := buildIdentity()
	fmt.Fprintf(w, "# HELP lotusx_build_info Build identity of the serving binary; the value is always 1.\n")
	fmt.Fprintf(w, "# TYPE lotusx_build_info gauge\n")
	fmt.Fprintf(w, "lotusx_build_info{version=%q,goversion=%q,module=%q} 1\n", version, goVersion, module)

	scalarCounter(w, "lotusx_http_legacy_requests_total", "Requests served via deprecated pre-v1 route aliases.", r.legacyHits.Load())
}

// writeClusterRows renders the lotusx_cluster_* federation families — the
// per-shard-server rollup a router exposes so one scrape target describes
// the whole cluster.  The requests/errors families mirror the remote
// servers' own monotone counters; the latency quantiles are the remote
// "query" endpoint's, re-exported as gauges (a federated histogram cannot
// be merged honestly across heterogeneous scrape times).
func writeClusterRows(w io.Writer, rows []clusterRow) {
	fmt.Fprintf(w, "# HELP lotusx_cluster_server_up 1 while the shard server answers federation polls.\n")
	fmt.Fprintf(w, "# TYPE lotusx_cluster_server_up gauge\n")
	for _, row := range rows {
		up := 0
		if row.up {
			up = 1
		}
		fmt.Fprintf(w, "lotusx_cluster_server_up{server=%q} %d\n", row.name, up)
	}
	fmt.Fprintf(w, "# HELP lotusx_cluster_server_uptime_seconds Uptime the shard server reported on its last successful poll.\n")
	fmt.Fprintf(w, "# TYPE lotusx_cluster_server_uptime_seconds gauge\n")
	for _, row := range rows {
		fmt.Fprintf(w, "lotusx_cluster_server_uptime_seconds{server=%q} %s\n", row.name, fmtFloat(row.uptime))
	}
	fmt.Fprintf(w, "# HELP lotusx_cluster_server_requests_total Requests the shard server reported across its endpoints.\n")
	fmt.Fprintf(w, "# TYPE lotusx_cluster_server_requests_total counter\n")
	for _, row := range rows {
		fmt.Fprintf(w, "lotusx_cluster_server_requests_total{server=%q} %d\n", row.name, row.requests)
	}
	fmt.Fprintf(w, "# HELP lotusx_cluster_server_errors_total Error responses (status >= 400) the shard server reported.\n")
	fmt.Fprintf(w, "# TYPE lotusx_cluster_server_errors_total counter\n")
	for _, row := range rows {
		fmt.Fprintf(w, "lotusx_cluster_server_errors_total{server=%q} %d\n", row.name, row.errors)
	}
	fmt.Fprintf(w, "# HELP lotusx_cluster_server_error_ratio Errors over requests on the shard server's last snapshot.\n")
	fmt.Fprintf(w, "# TYPE lotusx_cluster_server_error_ratio gauge\n")
	for _, row := range rows {
		fmt.Fprintf(w, "lotusx_cluster_server_error_ratio{server=%q} %s\n", row.name, fmtFloat(row.errorRatio))
	}
	hasLatency := false
	for _, row := range rows {
		if row.hasQueryLatency {
			hasLatency = true
		}
	}
	if !hasLatency {
		return
	}
	fmt.Fprintf(w, "# HELP lotusx_cluster_server_query_latency_seconds Query-endpoint latency quantiles the shard server reported.\n")
	fmt.Fprintf(w, "# TYPE lotusx_cluster_server_query_latency_seconds gauge\n")
	for _, row := range rows {
		if !row.hasQueryLatency {
			continue
		}
		for _, q := range []struct {
			q  string
			ms float64
		}{{"0.5", row.queryLatency.P50MS}, {"0.95", row.queryLatency.P95MS}, {"0.99", row.queryLatency.P99MS}} {
			fmt.Fprintf(w, "lotusx_cluster_server_query_latency_seconds{server=%q,quantile=%q} %s\n",
				row.name, q.q, fmtFloat(q.ms/1000))
		}
	}
}

// scalarFloatCounter writes one unlabeled float-valued counter (GC pause
// totals are fractional seconds).
func scalarFloatCounter(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %s\n", name, help, name, name, fmtFloat(v))
}

// scalarCounter writes one unlabeled counter.
func scalarCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// scalarGauge writes one unlabeled gauge.
func scalarGauge(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

// scalarHistogram writes one unlabeled histogram series.
func scalarHistogram(w io.Writer, name, help string, e Export) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i := 0; i < bucketCount-1; i++ {
		cum += e.Buckets[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, fmtFloat(bucketBound(i).Seconds()), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, e.Count)
	fmt.Fprintf(w, "%s_sum %s\n", name, fmtFloat(time.Duration(e.Sum).Seconds()))
	fmt.Fprintf(w, "%s_count %d\n", name, e.Count)
}

// counterFamily writes one counter metric family with a single label.
func counterFamily(w io.Writer, name, help string, keys []string, val func(string) int64, label string) {
	if len(keys) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, k, val(k))
	}
}

// gaugeFamily writes one gauge metric family with a single label.
func gaugeFamily(w io.Writer, name, help string, keys []string, val func(string) int64, label string) {
	if len(keys) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, k, val(k))
	}
}

// histogramFamily writes one histogram metric family with a single label.
func histogramFamily(w io.Writer, name, help string, keys []string, export func(string) Export, label string) {
	if len(keys) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, k := range keys {
		writeHistogram(w, name, fmt.Sprintf("%s=%q", label, k), export(k))
	}
}

// writeHistogram emits the _bucket/_sum/_count triple of one labeled series.
func writeHistogram(w io.Writer, name, labels string, e Export) {
	var cum int64
	// The finite buckets; the final (overflow) bucket folds into +Inf.
	for i := 0; i < bucketCount-1; i++ {
		cum += e.Buckets[i]
		fmt.Fprintf(w, "%s_bucket{%s,le=\"%s\"} %d\n", name, labels, fmtFloat(bucketBound(i).Seconds()), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, e.Count)
	fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, fmtFloat(time.Duration(e.Sum).Seconds()))
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, e.Count)
}

// fmtFloat renders a float compactly; %g keeps round values short and
// Go's escaping of label values via %q matches the exposition format's
// (backslash, quote and newline escapes are identical).
func fmtFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
