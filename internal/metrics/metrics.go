// Package metrics provides the serving layer's observability primitives:
// lock-free atomic counters and bounded latency histograms, aggregated per
// HTTP endpoint and per join algorithm, with quantile estimates (p50, p95,
// p99) computed from the histogram buckets.  Everything is safe for
// concurrent use on the request path; a Snapshot materializes a consistent
// JSON-able view for GET /api/v1/metrics.
package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// bucketCount and the bounds below define the latency histogram: exponential
// buckets doubling from 100µs, so the range 100µs .. ~1.7min is covered in
// 21 buckets plus an overflow bucket.  Memory per histogram is fixed
// (bounded), whatever the traffic.
const bucketCount = 22

// bucketBound returns the inclusive upper bound of bucket i.
func bucketBound(i int) time.Duration {
	return 100 * time.Microsecond << uint(i)
}

// Histogram is a fixed-bucket latency histogram safe for concurrent
// observation.
type Histogram struct {
	buckets [bucketCount]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < bucketCount-1 && d > bucketBound(i) {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile estimates the q-quantile (0 < q < 1) as the upper bound of the
// bucket containing that rank, in milliseconds.  It returns 0 with no
// samples.  Bucket-bound estimation overshoots by at most one bucket width —
// plenty for dashboards and alerts.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < bucketCount; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return float64(bucketBound(i)) / float64(time.Millisecond)
		}
	}
	return float64(bucketBound(bucketCount-1)) / float64(time.Millisecond)
}

// MeanMS returns the mean latency in milliseconds, 0 with no samples.
func (h *Histogram) MeanMS() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n) / float64(time.Millisecond)
}

// Endpoint aggregates one HTTP endpoint: request/outcome counters plus a
// latency histogram.
type Endpoint struct {
	Requests atomic.Int64 // all requests routed to the endpoint
	Errors   atomic.Int64 // responses with status >= 400 (including the two below)
	Timeouts atomic.Int64 // responses that hit the per-request deadline (504)
	Shed     atomic.Int64 // responses rejected by the load limiter (429)
	Latency  Histogram
}

// Record tallies one finished request given its response status.
func (e *Endpoint) Record(status int, d time.Duration) {
	e.Requests.Add(1)
	e.Latency.Observe(d)
	if status >= 400 {
		e.Errors.Add(1)
	}
	switch status {
	case 504:
		e.Timeouts.Add(1)
	case 429:
		e.Shed.Add(1)
	}
}

// Registry is the process-wide metrics root.
type Registry struct {
	mu        sync.RWMutex
	endpoints map[string]*Endpoint
	algos     map[string]*Histogram
	corpora   map[string]*CorpusMetrics
	start     time.Time
}

// New returns an empty Registry.
func New() *Registry {
	return &Registry{
		endpoints: make(map[string]*Endpoint),
		algos:     make(map[string]*Histogram),
		corpora:   make(map[string]*CorpusMetrics),
		start:     time.Now(),
	}
}

// Endpoint returns (creating on first use) the metrics of the named
// endpoint.
func (r *Registry) Endpoint(name string) *Endpoint {
	r.mu.RLock()
	e := r.endpoints[name]
	r.mu.RUnlock()
	if e != nil {
		return e
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e = r.endpoints[name]; e == nil {
		e = &Endpoint{}
		r.endpoints[name] = e
	}
	return e
}

// Algorithm returns (creating on first use) the latency histogram of the
// named join algorithm.
func (r *Registry) Algorithm(name string) *Histogram {
	r.mu.RLock()
	h := r.algos[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.algos[name]; h == nil {
		h = &Histogram{}
		r.algos[name] = h
	}
	return h
}

// LatencySnapshot is the JSON shape of one histogram.
type LatencySnapshot struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"meanMs"`
	P50MS  float64 `json:"p50Ms"`
	P95MS  float64 `json:"p95Ms"`
	P99MS  float64 `json:"p99Ms"`
}

func snapshotHistogram(h *Histogram) LatencySnapshot {
	return LatencySnapshot{
		Count:  h.Count(),
		MeanMS: h.MeanMS(),
		P50MS:  h.Quantile(0.50),
		P95MS:  h.Quantile(0.95),
		P99MS:  h.Quantile(0.99),
	}
}

// EndpointSnapshot is the JSON shape of one endpoint's metrics.
type EndpointSnapshot struct {
	Requests int64           `json:"requests"`
	Errors   int64           `json:"errors"`
	Timeouts int64           `json:"timeouts"`
	Shed     int64           `json:"shed"`
	Latency  LatencySnapshot `json:"latency"`
}

// Snapshot is the JSON payload of GET /api/v1/metrics.
type Snapshot struct {
	UptimeSeconds float64                     `json:"uptimeSeconds"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
	Algorithms    map[string]LatencySnapshot  `json:"algorithms"`
	// Corpora appears only when sharded corpora are registered.
	Corpora map[string]CorpusSnapshot `json:"corpora,omitempty"`
}

// Snapshot materializes a point-in-time view of every endpoint and
// algorithm.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		UptimeSeconds: time.Since(r.start).Seconds(),
		Endpoints:     make(map[string]EndpointSnapshot, len(r.endpoints)),
		Algorithms:    make(map[string]LatencySnapshot, len(r.algos)),
	}
	for name, e := range r.endpoints {
		s.Endpoints[name] = EndpointSnapshot{
			Requests: e.Requests.Load(),
			Errors:   e.Errors.Load(),
			Timeouts: e.Timeouts.Load(),
			Shed:     e.Shed.Load(),
			Latency:  snapshotHistogram(&e.Latency),
		}
	}
	for name, h := range r.algos {
		s.Algorithms[name] = snapshotHistogram(h)
	}
	if len(r.corpora) > 0 {
		s.Corpora = make(map[string]CorpusSnapshot, len(r.corpora))
		for name, c := range r.corpora {
			s.Corpora[name] = CorpusSnapshot{
				Shards:   c.shards.Load(),
				Swaps:    c.Swaps.Load(),
				Searches: c.Searches.Load(),
				Fanout:   snapshotHistogram(&c.Fanout),
				Merge:    snapshotHistogram(&c.Merge),
			}
		}
	}
	return s
}
