// Package metrics provides the serving layer's observability primitives:
// lock-free atomic counters and bounded latency histograms, aggregated per
// HTTP endpoint, per join algorithm, per pipeline stage and per corpus
// shard, with quantile estimates (p50, p95, p99) computed from the
// histogram buckets.  Everything is safe for concurrent use on the request
// path; a Snapshot materializes a JSON-able view for GET /api/v1/metrics
// and WritePrometheus renders the text exposition for GET /metrics.
//
// # Snapshot consistency semantics
//
// Observations are individual atomic adds with no global lock, so a
// snapshot taken while requests are in flight is not a single
// point-in-time cut:
//
//   - Within one histogram, the bucket vector is read element by element in
//     one pass and the sample count is derived from those same reads, so
//     count always equals the cumulative bucket total (the Prometheus +Inf
//     invariant holds by construction).  The sum is read separately and may
//     lag or lead the buckets by the handful of observations that landed
//     mid-read; the skew is bounded by in-flight requests and never
//     accumulates.
//   - Across fields of one endpoint (requests vs errors vs latency) and
//     across endpoints, counters are read independently; each is monotone,
//     so a snapshot can be "torn" by at most the requests that completed
//     while it was being taken.
//
// These are the standard semantics of lock-free metrics (Prometheus client
// libraries behave the same way); the alternative — a lock shared by every
// request — is the wrong trade for a hot serving path.
package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// bucketCount and the bounds below define the latency histogram: exponential
// buckets doubling from 100µs, so the range 100µs .. ~1.7min is covered in
// 21 buckets plus an overflow bucket.  Memory per histogram is fixed
// (bounded), whatever the traffic.
const bucketCount = 22

// bucketBound returns the inclusive upper bound of bucket i.  The last
// bucket (i == bucketCount-1) is the overflow bucket; its bound is only
// nominal.
func bucketBound(i int) time.Duration {
	return 100 * time.Microsecond << uint(i)
}

// Export is a coherent read of one histogram: Count is derived from the
// bucket loads themselves, so Count == ΣBuckets always holds within one
// Export (see the package comment for the exact semantics).
type Export struct {
	// Buckets holds per-bucket sample counts; bucket i covers
	// (bucketBound(i-1), bucketBound(i)], the last bucket is overflow.
	Buckets [bucketCount]int64
	// Count is the total number of samples (== sum of Buckets).
	Count int64
	// Sum is the summed latency in nanoseconds; it may skew from Count by
	// in-flight observations.
	Sum int64
}

// Histogram is a fixed-bucket latency histogram safe for concurrent
// observation.
type Histogram struct {
	buckets [bucketCount]atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < bucketCount-1 && d > bucketBound(i) {
		i++
	}
	h.buckets[i].Add(1)
	h.sum.Add(int64(d))
}

// Export reads the histogram in one pass.  All derived views (Count,
// Quantile, MeanMS, snapshots, the Prometheus exposition) go through it so
// they agree with each other within a single read.
func (h *Histogram) Export() Export {
	var e Export
	for i := 0; i < bucketCount; i++ {
		n := h.buckets[i].Load()
		e.Buckets[i] = n
		e.Count += n
	}
	e.Sum = h.sum.Load()
	return e
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.Export().Count }

// Quantile estimates the q-quantile (0 < q < 1) as the upper bound of the
// bucket containing that rank, in milliseconds.  It returns 0 with no
// samples.  Bucket-bound estimation overshoots by at most one bucket width —
// plenty for dashboards and alerts.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Export().Quantile(q)
}

// Quantile estimates the q-quantile over an already-exported read; see
// Histogram.Quantile.
func (e Export) Quantile(q float64) float64 {
	if e.Count == 0 {
		return 0
	}
	rank := int64(q*float64(e.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < bucketCount; i++ {
		seen += e.Buckets[i]
		if seen >= rank {
			return float64(bucketBound(i)) / float64(time.Millisecond)
		}
	}
	return float64(bucketBound(bucketCount-1)) / float64(time.Millisecond)
}

// MeanMS returns the mean latency in milliseconds, 0 with no samples.
func (h *Histogram) MeanMS() float64 {
	e := h.Export()
	if e.Count == 0 {
		return 0
	}
	return float64(e.Sum) / float64(e.Count) / float64(time.Millisecond)
}

// Endpoint aggregates one HTTP endpoint: request/outcome counters plus a
// latency histogram.
type Endpoint struct {
	Requests atomic.Int64 // all requests routed to the endpoint
	Errors   atomic.Int64 // responses with status >= 400 (including the two below)
	Timeouts atomic.Int64 // responses that hit the per-request deadline (504)
	// Shed counts responses refused by admission control: per-client rate
	// limiting (429, tallied by Record) plus the in-flight limiter's and the
	// drain gate's 503s (tallied explicitly by their OnShed hooks, so
	// handler-path 503s like shard quarantine are never conflated in).
	Shed    atomic.Int64
	Latency Histogram
}

// Record tallies one finished request given its response status.
func (e *Endpoint) Record(status int, d time.Duration) {
	e.Requests.Add(1)
	e.Latency.Observe(d)
	if status >= 400 {
		e.Errors.Add(1)
	}
	switch status {
	case 504:
		e.Timeouts.Add(1)
	case 429:
		e.Shed.Add(1)
	}
}

// Registry is the process-wide metrics root.
type Registry struct {
	mu        sync.RWMutex
	endpoints map[string]*Endpoint
	algos     map[string]*Histogram
	stages    map[string]*Histogram
	corpora   map[string]*CorpusMetrics
	caches    map[string]*CacheMetrics
	remotes   map[string]*RemoteMetrics
	ingest    *IngestMetrics
	// lifecycle tracks drain state and the ingest journal; nil until
	// Lifecycle() is first called.
	lifecycle *LifecycleMetrics
	// admission tracks per-client rate limiting and the router retry budget;
	// nil until Admission() is first called.
	admission *AdmissionMetrics
	// cluster aggregates federated shard-server snapshots (router mode);
	// nil until Cluster() is first called.
	cluster *ClusterMetrics
	start   time.Time

	// legacyHits counts requests served via deprecated pre-v1 route aliases
	// (see internal/server: the Sunset-headered /api/... paths).
	legacyHits atomic.Int64
}

// LegacyHit tallies one request served through a deprecated route alias.
func (r *Registry) LegacyHit() { r.legacyHits.Add(1) }

// LegacyHits returns the deprecated-alias request count.
func (r *Registry) LegacyHits() int64 { return r.legacyHits.Load() }

// New returns an empty Registry.
func New() *Registry {
	return &Registry{
		endpoints: make(map[string]*Endpoint),
		algos:     make(map[string]*Histogram),
		stages:    make(map[string]*Histogram),
		corpora:   make(map[string]*CorpusMetrics),
		caches:    make(map[string]*CacheMetrics),
		remotes:   make(map[string]*RemoteMetrics),
		start:     time.Now(),
	}
}

// Endpoint returns (creating on first use) the metrics of the named
// endpoint.
func (r *Registry) Endpoint(name string) *Endpoint {
	r.mu.RLock()
	e := r.endpoints[name]
	r.mu.RUnlock()
	if e != nil {
		return e
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e = r.endpoints[name]; e == nil {
		e = &Endpoint{}
		r.endpoints[name] = e
	}
	return e
}

// Algorithm returns (creating on first use) the latency histogram of the
// named join algorithm.
func (r *Registry) Algorithm(name string) *Histogram {
	return lazyHistogram(r, r.algos, name)
}

// Stage returns (creating on first use) the latency histogram of the named
// pipeline stage — "parse", "join:twigstack", "rank", "fanout", "merge",
// "complete:tags", ... — fed by folding finished request traces, so the
// per-stage aggregates are always on whether or not a client asked to see
// its trace.
func (r *Registry) Stage(name string) *Histogram {
	return lazyHistogram(r, r.stages, name)
}

// lazyHistogram is the shared double-checked create for a registry
// histogram map (the maps are only written under r.mu).
func lazyHistogram(r *Registry, m map[string]*Histogram, name string) *Histogram {
	r.mu.RLock()
	h := m[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = m[name]; h == nil {
		h = &Histogram{}
		m[name] = h
	}
	return h
}

// LatencySnapshot is the JSON shape of one histogram.
type LatencySnapshot struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"meanMs"`
	P50MS  float64 `json:"p50Ms"`
	P95MS  float64 `json:"p95Ms"`
	P99MS  float64 `json:"p99Ms"`
}

func snapshotHistogram(h *Histogram) LatencySnapshot {
	e := h.Export()
	mean := 0.0
	if e.Count > 0 {
		mean = float64(e.Sum) / float64(e.Count) / float64(time.Millisecond)
	}
	return LatencySnapshot{
		Count:  e.Count,
		MeanMS: mean,
		P50MS:  e.Quantile(0.50),
		P95MS:  e.Quantile(0.95),
		P99MS:  e.Quantile(0.99),
	}
}

// EndpointSnapshot is the JSON shape of one endpoint's metrics.
type EndpointSnapshot struct {
	Requests int64           `json:"requests"`
	Errors   int64           `json:"errors"`
	Timeouts int64           `json:"timeouts"`
	Shed     int64           `json:"shed"`
	Latency  LatencySnapshot `json:"latency"`
}

// Snapshot is the JSON payload of GET /api/v1/metrics.  See the package
// comment for its consistency semantics under concurrent load.
type Snapshot struct {
	UptimeSeconds float64                     `json:"uptimeSeconds"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
	Algorithms    map[string]LatencySnapshot  `json:"algorithms"`
	// Stages appears once query traces have been folded in: per-pipeline-stage
	// latency aggregates (parse, join:<algo>, rank, fanout, merge, ...).
	Stages map[string]LatencySnapshot `json:"stages,omitempty"`
	// Corpora appears only when sharded corpora are registered.
	Corpora map[string]CorpusSnapshot `json:"corpora,omitempty"`
	// Caches appears only when hot-path caches are registered (see
	// internal/cache): per-cache hit/miss/eviction/singleflight counters
	// plus live entry and byte counts.
	Caches map[string]CacheSnapshot `json:"caches,omitempty"`
	// Remotes appears only on router nodes fanning out to remote shard
	// servers (see internal/remote): hedging outcomes and per-replica RPC
	// latency, keyed by cluster name.
	Remotes map[string]RemoteSnapshot `json:"remote,omitempty"`
	// Ingest appears once the async ingestion pipeline is running (see
	// internal/ingest): job counters, queue gauges and compaction totals.
	Ingest *IngestSnapshot `json:"ingest,omitempty"`
	// Lifecycle appears on servers with the lifecycle tier wired: the drain
	// state machine and the durable ingest journal.
	Lifecycle *LifecycleSnapshot `json:"lifecycle,omitempty"`
	// Admission appears once per-client rate limiting or the router retry
	// budget is active.
	Admission *AdmissionSnapshot `json:"admission,omitempty"`
	// Process reports the Go runtime's view of the serving process:
	// goroutines, heap bytes, GC totals, and the build identity.
	Process ProcessSnapshot `json:"process"`
	// SLO carries the slo.Tracker snapshot when objectives are declared (an
	// opaque value here so the metrics package needs no slo import; see
	// internal/server and internal/slo).
	SLO any `json:"slo,omitempty"`
	// LegacyRequests counts requests served via deprecated pre-v1 route
	// aliases; absent until the first such request.
	LegacyRequests int64 `json:"legacyRequests,omitempty"`
}

// Snapshot materializes a view of every endpoint, algorithm, stage and
// corpus.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		UptimeSeconds: time.Since(r.start).Seconds(),
		Endpoints:     make(map[string]EndpointSnapshot, len(r.endpoints)),
		Algorithms:    make(map[string]LatencySnapshot, len(r.algos)),
	}
	for name, e := range r.endpoints {
		s.Endpoints[name] = EndpointSnapshot{
			Requests: e.Requests.Load(),
			Errors:   e.Errors.Load(),
			Timeouts: e.Timeouts.Load(),
			Shed:     e.Shed.Load(),
			Latency:  snapshotHistogram(&e.Latency),
		}
	}
	for name, h := range r.algos {
		s.Algorithms[name] = snapshotHistogram(h)
	}
	if len(r.stages) > 0 {
		s.Stages = make(map[string]LatencySnapshot, len(r.stages))
		for name, h := range r.stages {
			s.Stages[name] = snapshotHistogram(h)
		}
	}
	if len(r.corpora) > 0 {
		s.Corpora = make(map[string]CorpusSnapshot, len(r.corpora))
		for name, c := range r.corpora {
			s.Corpora[name] = c.snapshot()
		}
	}
	if len(r.caches) > 0 {
		s.Caches = make(map[string]CacheSnapshot, len(r.caches))
		for name, c := range r.caches {
			s.Caches[name] = c.snapshot()
		}
	}
	if len(r.remotes) > 0 {
		s.Remotes = make(map[string]RemoteSnapshot, len(r.remotes))
		for name, m := range r.remotes {
			s.Remotes[name] = m.snapshot()
		}
	}
	if r.ingest != nil {
		snap := r.ingest.snapshot()
		s.Ingest = &snap
	}
	if r.lifecycle != nil {
		snap := r.lifecycle.snapshot()
		s.Lifecycle = &snap
	}
	if r.admission != nil {
		snap := r.admission.snapshot()
		s.Admission = &snap
	}
	s.Process = processSnapshot()
	s.LegacyRequests = r.legacyHits.Load()
	return s
}
