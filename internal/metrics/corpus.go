package metrics

import (
	"sync"
	"sync/atomic"
)

// CorpusMetrics aggregates one sharded corpus: a shard-count gauge,
// snapshot-swap and search counters, latency histograms for the two phases
// the sharded query path adds over a single engine — the parallel per-shard
// fan-out and the global result merge — and one latency histogram per shard,
// so a straggling shard shows up in aggregates without a trace.  All fields
// are safe for concurrent use on the query path.
type CorpusMetrics struct {
	shards atomic.Int64
	deltas atomic.Int64 // delta shards awaiting compaction
	// Index-substrate size accounting, summed over local shards (see
	// internal/index compression): resident is what the snapshot's indexes
	// actually hold, raw is the raw-substrate-equivalent estimate, shapes and
	// instances describe the subtree-dedup DAG, compressed counts shards
	// whose index runs on the compressed substrate.
	residentBytes    atomic.Int64
	rawBytes         atomic.Int64
	indexShapes      atomic.Int64
	indexInstances   atomic.Int64
	compressedShards atomic.Int64
	Swaps            atomic.Int64 // snapshot publishes (Add/Remove/Reindex)
	Searches         atomic.Int64 // fan-out searches served
	Fanout           Histogram    // wall-clock of the parallel per-shard phase
	Merge            Histogram    // wall-clock of the global merge + render phase

	// Fault-tolerance counters (see internal/corpus: degrade policy and the
	// per-shard circuit breakers).
	Partial       atomic.Int64 // searches answered with partial results
	ShardFailures atomic.Int64 // per-shard evaluation failures (incl. quarantine skips)
	BreakerTrips  atomic.Int64 // closed→open (and failed-probe) breaker transitions

	// mu guards perShard; the per-shard histograms themselves are lock-free
	// once handed out.
	mu       sync.RWMutex
	perShard map[string]*Histogram

	// healthMu guards healthFn, the corpus-installed provider of per-shard
	// breaker states (the metrics package cannot import corpus).
	healthMu sync.RWMutex
	healthFn func() map[string]ShardHealth
}

// ShardHealth is the JSON view of one shard's circuit breaker.
type ShardHealth struct {
	// State is "closed" (serving), "open" (quarantined) or "half-open"
	// (cooldown expired, one probe in flight).
	State string `json:"state"`
	// ConsecutiveFailures counts failures since the last success.
	ConsecutiveFailures int `json:"consecutiveFailures,omitempty"`
	// Trips counts closed→open transitions (including failed probes).
	Trips int64 `json:"trips,omitempty"`
	// RetryInMS, for an open breaker, is the cooldown remaining before a
	// half-open probe is allowed.
	RetryInMS float64 `json:"retryInMs,omitempty"`
	// LastError is the failure that tripped or last advanced the breaker.
	LastError string `json:"lastError,omitempty"`
}

// SetHealthProvider installs the callback that materializes per-shard
// breaker states for snapshots and the Prometheus exposition.
func (c *CorpusMetrics) SetHealthProvider(fn func() map[string]ShardHealth) {
	c.healthMu.Lock()
	c.healthFn = fn
	c.healthMu.Unlock()
}

// health materializes the per-shard breaker view, nil without a provider.
func (c *CorpusMetrics) health() map[string]ShardHealth {
	c.healthMu.RLock()
	fn := c.healthFn
	c.healthMu.RUnlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// Quarantined counts shards whose breaker is not closed right now.
func (c *CorpusMetrics) Quarantined() int64 {
	var n int64
	for _, h := range c.health() {
		if h.State != "closed" {
			n++
		}
	}
	return n
}

// SetShards records the shard count of the current snapshot.
func (c *CorpusMetrics) SetShards(n int) { c.shards.Store(int64(n)) }

// Shards returns the last recorded shard count.
func (c *CorpusMetrics) Shards() int { return int(c.shards.Load()) }

// SetDeltaShards records the delta-shard count of the current snapshot —
// the compaction backlog.
func (c *CorpusMetrics) SetDeltaShards(n int) { c.deltas.Store(int64(n)) }

// DeltaShards returns the last recorded delta-shard count.
func (c *CorpusMetrics) DeltaShards() int { return int(c.deltas.Load()) }

// SetResident records the snapshot's index-substrate size accounting:
// resident and raw-equivalent bytes, DAG shape/instance counts, and how many
// shards compressed.  Corpora publish it on every snapshot swap.
func (c *CorpusMetrics) SetResident(resident, raw, shapes, instances int64, compressed int) {
	c.residentBytes.Store(resident)
	c.rawBytes.Store(raw)
	c.indexShapes.Store(shapes)
	c.indexInstances.Store(instances)
	c.compressedShards.Store(int64(compressed))
}

// ResidentBytes returns the last recorded resident index size in bytes.
func (c *CorpusMetrics) ResidentBytes() int64 { return c.residentBytes.Load() }

// CompressedShards returns the last recorded compressed-shard count.
func (c *CorpusMetrics) CompressedShards() int64 { return c.compressedShards.Load() }

// Swapped tallies one snapshot publish.
func (c *CorpusMetrics) Swapped() { c.Swaps.Add(1) }

// Shard returns (creating on first use) the named shard's per-query latency
// histogram — one observation per shard per fan-out, so cross-shard skew
// (the straggler problem) is visible in always-on aggregates.
func (c *CorpusMetrics) Shard(name string) *Histogram {
	c.mu.RLock()
	h := c.perShard[name]
	c.mu.RUnlock()
	if h != nil {
		return h
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.perShard == nil {
		c.perShard = make(map[string]*Histogram)
	}
	if h = c.perShard[name]; h == nil {
		h = &Histogram{}
		c.perShard[name] = h
	}
	return h
}

// shardHistograms returns the live per-shard histograms keyed by shard name.
func (c *CorpusMetrics) shardHistograms() map[string]*Histogram {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]*Histogram, len(c.perShard))
	for name, h := range c.perShard {
		out[name] = h
	}
	return out
}

// Corpus returns (creating on first use) the metrics of the named corpus.
func (r *Registry) Corpus(name string) *CorpusMetrics {
	r.mu.RLock()
	c := r.corpora[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.corpora[name]; c == nil {
		c = &CorpusMetrics{}
		r.corpora[name] = c
	}
	return c
}

// CorpusSnapshot is the JSON shape of one corpus's metrics.
type CorpusSnapshot struct {
	Shards int64 `json:"shards"`
	// DeltaShards counts async-ingested delta shards awaiting compaction.
	DeltaShards int64           `json:"deltaShards,omitempty"`
	Swaps       int64           `json:"swaps"`
	Searches    int64           `json:"searches"`
	Fanout      LatencySnapshot `json:"fanout"`
	Merge       LatencySnapshot `json:"merge"`
	// PartialSearches counts fan-outs answered from a strict subset of
	// shards under the degrade policy.
	PartialSearches int64 `json:"partialSearches,omitempty"`
	// ShardFailures counts per-shard evaluation failures, including
	// breaker-quarantine skips.
	ShardFailures int64 `json:"shardFailures,omitempty"`
	// BreakerTrips counts circuit-breaker closed→open transitions.
	BreakerTrips int64 `json:"breakerTrips,omitempty"`
	// ResidentBytes is the summed resident size of the snapshot's local
	// shard indexes; RawBytes is the raw-substrate equivalent (equal when
	// nothing compressed).  Absent for remote corpora.
	ResidentBytes int64 `json:"residentBytes,omitempty"`
	RawBytes      int64 `json:"rawBytes,omitempty"`
	// IndexShapes / IndexInstances describe the subtree-dedup DAG of the
	// compressed shards: distinct shapes stored vs occurrences they stand
	// for.  Zero when no shard compressed.
	IndexShapes    int64 `json:"indexShapes,omitempty"`
	IndexInstances int64 `json:"indexInstances,omitempty"`
	// CompressedShards counts shards running on the compressed substrate.
	CompressedShards int64 `json:"compressedShards,omitempty"`
	// Health reports each shard's circuit-breaker state, keyed by shard
	// name; absent when the corpus has not installed a health provider.
	Health map[string]ShardHealth `json:"health,omitempty"`
	// ShardLatency reports per-shard query latency, keyed by shard name;
	// absent until the first fan-out.
	ShardLatency map[string]LatencySnapshot `json:"shardLatency,omitempty"`
}

// snapshot materializes the corpus's JSON view.
func (c *CorpusMetrics) snapshot() CorpusSnapshot {
	s := CorpusSnapshot{
		Shards:           c.shards.Load(),
		DeltaShards:      c.deltas.Load(),
		Swaps:            c.Swaps.Load(),
		Searches:         c.Searches.Load(),
		Fanout:           snapshotHistogram(&c.Fanout),
		Merge:            snapshotHistogram(&c.Merge),
		PartialSearches:  c.Partial.Load(),
		ShardFailures:    c.ShardFailures.Load(),
		BreakerTrips:     c.BreakerTrips.Load(),
		ResidentBytes:    c.residentBytes.Load(),
		RawBytes:         c.rawBytes.Load(),
		IndexShapes:      c.indexShapes.Load(),
		IndexInstances:   c.indexInstances.Load(),
		CompressedShards: c.compressedShards.Load(),
		Health:           c.health(),
	}
	per := c.shardHistograms()
	if len(per) > 0 {
		s.ShardLatency = make(map[string]LatencySnapshot, len(per))
		for name, h := range per {
			s.ShardLatency[name] = snapshotHistogram(h)
		}
	}
	return s
}
