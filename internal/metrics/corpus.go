package metrics

import (
	"sync/atomic"
)

// CorpusMetrics aggregates one sharded corpus: a shard-count gauge,
// snapshot-swap and search counters, and latency histograms for the two
// phases the sharded query path adds over a single engine — the parallel
// per-shard fan-out and the global result merge.  All fields are safe for
// concurrent use on the query path.
type CorpusMetrics struct {
	shards   atomic.Int64
	Swaps    atomic.Int64 // snapshot publishes (Add/Remove/Reindex)
	Searches atomic.Int64 // fan-out searches served
	Fanout   Histogram    // wall-clock of the parallel per-shard phase
	Merge    Histogram    // wall-clock of the global merge + render phase
}

// SetShards records the shard count of the current snapshot.
func (c *CorpusMetrics) SetShards(n int) { c.shards.Store(int64(n)) }

// Shards returns the last recorded shard count.
func (c *CorpusMetrics) Shards() int { return int(c.shards.Load()) }

// Swapped tallies one snapshot publish.
func (c *CorpusMetrics) Swapped() { c.Swaps.Add(1) }

// Corpus returns (creating on first use) the metrics of the named corpus.
func (r *Registry) Corpus(name string) *CorpusMetrics {
	r.mu.RLock()
	c := r.corpora[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.corpora[name]; c == nil {
		c = &CorpusMetrics{}
		r.corpora[name] = c
	}
	return c
}

// CorpusSnapshot is the JSON shape of one corpus's metrics.
type CorpusSnapshot struct {
	Shards   int64           `json:"shards"`
	Swaps    int64           `json:"swaps"`
	Searches int64           `json:"searches"`
	Fanout   LatencySnapshot `json:"fanout"`
	Merge    LatencySnapshot `json:"merge"`
}
