package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// RemoteMetrics aggregates one cluster of remote shards (internal/remote):
// hedging outcome counters plus one RPC latency histogram per replica
// endpoint, so a slow or flapping replica shows up in /api/v1/metrics and
// the Prometheus exposition without a trace.  All fields are safe for
// concurrent use on the query path.
type RemoteMetrics struct {
	// Searches counts logical-shard searches routed through hedged remote
	// backends (one per shard per fan-out, not per replica RPC).
	Searches atomic.Int64
	// HedgesFired counts backup-replica requests launched because the
	// primary outlived the hedge delay.
	HedgesFired atomic.Int64
	// HedgeWins counts searches answered by a hedged (backup) request;
	// HedgeLosses counts searches where a hedge was fired but the primary
	// still answered first.  Wins+Losses ≤ HedgesFired (a search that fails
	// outright counts neither).
	HedgeWins   atomic.Int64
	HedgeLosses atomic.Int64
	// Failovers counts immediate next-replica launches after a fast replica
	// error (distinct from hedges, which react to latency, not failure).
	Failovers atomic.Int64
	// RPCErrors counts individual replica RPCs that failed.
	RPCErrors atomic.Int64

	// mu guards replicas; the histograms are lock-free once handed out.
	mu       sync.RWMutex
	replicas map[string]*Histogram
}

// Replica returns (creating on first use) the RPC latency histogram of the
// named replica endpoint.  Every RPC is observed, failed ones included —
// error latency is exactly what hedging tuning needs to see.
func (m *RemoteMetrics) Replica(name string) *Histogram {
	m.mu.RLock()
	h := m.replicas[name]
	m.mu.RUnlock()
	if h != nil {
		return h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h = m.replicas[name]; h == nil {
		h = &Histogram{}
		m.replicas[name] = h
	}
	return h
}

// ObserveReplica records one replica RPC's latency.
func (m *RemoteMetrics) ObserveReplica(name string, d time.Duration) {
	m.Replica(name).Observe(d)
}

// RemoteSnapshot is the JSON shape of one cluster's remote metrics.
type RemoteSnapshot struct {
	Searches    int64 `json:"searches"`
	HedgesFired int64 `json:"hedgesFired"`
	HedgeWins   int64 `json:"hedgeWins"`
	HedgeLosses int64 `json:"hedgeLosses"`
	Failovers   int64 `json:"failovers"`
	RPCErrors   int64 `json:"rpcErrors"`
	// Replicas maps replica endpoint name to its RPC latency aggregate.
	Replicas map[string]LatencySnapshot `json:"replicas,omitempty"`
}

func (m *RemoteMetrics) snapshot() RemoteSnapshot {
	s := RemoteSnapshot{
		Searches:    m.Searches.Load(),
		HedgesFired: m.HedgesFired.Load(),
		HedgeWins:   m.HedgeWins.Load(),
		HedgeLosses: m.HedgeLosses.Load(),
		Failovers:   m.Failovers.Load(),
		RPCErrors:   m.RPCErrors.Load(),
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.replicas) > 0 {
		s.Replicas = make(map[string]LatencySnapshot, len(m.replicas))
		for name, h := range m.replicas {
			s.Replicas[name] = snapshotHistogram(h)
		}
	}
	return s
}

// Remote returns (creating on first use) the remote-cluster metrics under
// the given name — conventionally the router-side dataset name.
func (r *Registry) Remote(name string) *RemoteMetrics {
	r.mu.RLock()
	m := r.remotes[name]
	r.mu.RUnlock()
	if m != nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m = r.remotes[name]; m == nil {
		m = &RemoteMetrics{replicas: make(map[string]*Histogram)}
		r.remotes[name] = m
	}
	return m
}
