package metrics

import (
	"sync/atomic"
)

// IngestMetrics aggregates the async ingestion pipeline (internal/ingest):
// job counters by outcome, live queue-depth and worker gauges, latency
// histograms for time-in-queue and time-running, and the background
// compactor's counters.  All fields are safe for concurrent use; the queue
// updates them from its enqueue path and worker goroutines.
type IngestMetrics struct {
	Enqueued atomic.Int64 // jobs accepted into the queue
	Deduped  atomic.Int64 // enqueues collapsed into an already-active identical job
	Rejected atomic.Int64 // enqueues refused because the queue was full
	Done     atomic.Int64 // jobs that finished successfully
	Failed   atomic.Int64 // jobs that finished with an error

	depth   atomic.Int64 // jobs queued, not yet running
	running atomic.Int64 // jobs currently on a worker

	QueueWait Histogram // enqueue → worker pickup
	Run       Histogram // worker pickup → finish

	// Background compaction (delta shards folded into base shards).
	Compactions        atomic.Int64 // successful compaction rounds
	CompactionNoops    atomic.Int64 // rounds that found no deltas to merge
	CompactionFailures atomic.Int64 // rounds that errored (incl. conflicts)
	CompactedShards    atomic.Int64 // delta shards folded away, summed
	CompactionRun      Histogram    // wall-clock per compaction round
}

// SetDepth records the number of queued (not yet running) jobs.
func (m *IngestMetrics) SetDepth(n int) { m.depth.Store(int64(n)) }

// Depth returns the last recorded queue depth.
func (m *IngestMetrics) Depth() int64 { return m.depth.Load() }

// SetRunning records the number of jobs currently on workers.
func (m *IngestMetrics) SetRunning(n int) { m.running.Store(int64(n)) }

// AddRunning adjusts the running-job gauge by d (workers call it with +1 on
// pickup and -1 on finish).
func (m *IngestMetrics) AddRunning(d int) { m.running.Add(int64(d)) }

// Running returns the last recorded running-job count.
func (m *IngestMetrics) Running() int64 { return m.running.Load() }

// Ingest returns the registry's ingest-pipeline metrics, creating them on
// first use.  There is one ingest queue per server, so the family is a
// singleton rather than a named map.
func (r *Registry) Ingest() *IngestMetrics {
	r.mu.RLock()
	m := r.ingest
	r.mu.RUnlock()
	if m != nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ingest == nil {
		r.ingest = &IngestMetrics{}
	}
	return r.ingest
}

// IngestSnapshot is the JSON shape of the ingest pipeline's metrics.
type IngestSnapshot struct {
	Enqueued   int64           `json:"enqueued"`
	Deduped    int64           `json:"deduped"`
	Rejected   int64           `json:"rejected,omitempty"`
	Done       int64           `json:"done"`
	Failed     int64           `json:"failed"`
	QueueDepth int64           `json:"queueDepth"`
	Running    int64           `json:"running"`
	QueueWait  LatencySnapshot `json:"queueWait"`
	Run        LatencySnapshot `json:"run"`

	Compactions        int64           `json:"compactions"`
	CompactionNoops    int64           `json:"compactionNoops,omitempty"`
	CompactionFailures int64           `json:"compactionFailures,omitempty"`
	CompactedShards    int64           `json:"compactedShards"`
	CompactionRun      LatencySnapshot `json:"compactionRun"`
}

// snapshot materializes the ingest pipeline's JSON view.
func (m *IngestMetrics) snapshot() IngestSnapshot {
	return IngestSnapshot{
		Enqueued:           m.Enqueued.Load(),
		Deduped:            m.Deduped.Load(),
		Rejected:           m.Rejected.Load(),
		Done:               m.Done.Load(),
		Failed:             m.Failed.Load(),
		QueueDepth:         m.depth.Load(),
		Running:            m.running.Load(),
		QueueWait:          snapshotHistogram(&m.QueueWait),
		Run:                snapshotHistogram(&m.Run),
		Compactions:        m.Compactions.Load(),
		CompactionNoops:    m.CompactionNoops.Load(),
		CompactionFailures: m.CompactionFailures.Load(),
		CompactedShards:    m.CompactedShards.Load(),
		CompactionRun:      snapshotHistogram(&m.CompactionRun),
	}
}
