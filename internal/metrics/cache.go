package metrics

import (
	"sync"
	"sync/atomic"
)

// CacheMetrics aggregates one hot-path cache (internal/cache): hit, miss,
// eviction and singleflight-wait counters plus a size provider the cache
// installs so snapshots report live entry and byte counts.  All counters are
// safe for concurrent use on the query path.
type CacheMetrics struct {
	Hits              atomic.Int64 // lookups answered from a stored entry
	Misses            atomic.Int64 // lookups that ran the computation
	Evictions         atomic.Int64 // entries dropped to stay within the byte budget
	SingleflightWaits atomic.Int64 // lookups that waited on an identical in-flight computation

	// sizeMu guards sizeFn, the cache-installed provider of live entry and
	// byte counts (the metrics package cannot import cache).
	sizeMu sync.RWMutex
	sizeFn func() (entries, bytes int64)
}

// SetSizeProvider installs the callback that reports the cache's live entry
// and byte counts for snapshots and the Prometheus exposition.
func (c *CacheMetrics) SetSizeProvider(fn func() (entries, bytes int64)) {
	c.sizeMu.Lock()
	c.sizeFn = fn
	c.sizeMu.Unlock()
}

// size reads the live entry and byte counts, zero without a provider.
func (c *CacheMetrics) size() (int64, int64) {
	c.sizeMu.RLock()
	fn := c.sizeFn
	c.sizeMu.RUnlock()
	if fn == nil {
		return 0, 0
	}
	return fn()
}

// Entries returns the cache's live entry count.
func (c *CacheMetrics) Entries() int64 { e, _ := c.size(); return e }

// Bytes returns the cache's live byte cost.
func (c *CacheMetrics) Bytes() int64 { _, b := c.size(); return b }

// Cache returns (creating on first use) the metrics of the named cache.
func (r *Registry) Cache(name string) *CacheMetrics {
	r.mu.RLock()
	c := r.caches[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.caches[name]; c == nil {
		c = &CacheMetrics{}
		r.caches[name] = c
	}
	return c
}

// CacheSnapshot is the JSON shape of one cache's metrics.
type CacheSnapshot struct {
	Hits              int64 `json:"hits"`
	Misses            int64 `json:"misses"`
	Evictions         int64 `json:"evictions,omitempty"`
	SingleflightWaits int64 `json:"singleflightWaits,omitempty"`
	Entries           int64 `json:"entries"`
	Bytes             int64 `json:"bytes"`
}

// snapshot materializes the cache's JSON view.
func (c *CacheMetrics) snapshot() CacheSnapshot {
	entries, bytes := c.size()
	return CacheSnapshot{
		Hits:              c.Hits.Load(),
		Misses:            c.Misses.Load(),
		Evictions:         c.Evictions.Load(),
		SingleflightWaits: c.SingleflightWaits.Load(),
		Entries:           entries,
		Bytes:             bytes,
	}
}
