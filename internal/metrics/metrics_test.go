package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast samples (~1ms) and 10 slow ones (~1s).
	for i := 0; i < 90; i++ {
		h.Observe(800 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(900 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 > 5 {
		t.Errorf("p50 = %vms, want ~1ms bucket", p50)
	}
	if p99 < 500 {
		t.Errorf("p99 = %vms, want the ~1s bucket", p99)
	}
	if m := h.MeanMS(); m < 80 || m > 120 {
		t.Errorf("mean = %vms, want ~90ms", m)
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.MeanMS() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(24 * time.Hour) // far past the last bound: overflow bucket
	h.Observe(-time.Second)   // negative: clamped to 0
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Quantile(0.99) <= 0 {
		t.Fatal("overflow sample lost")
	}
}

func TestEndpointRecord(t *testing.T) {
	var e Endpoint
	e.Record(200, time.Millisecond)
	e.Record(400, time.Millisecond)
	e.Record(429, time.Millisecond)
	e.Record(504, time.Millisecond)
	if e.Requests.Load() != 4 || e.Errors.Load() != 3 || e.Shed.Load() != 1 || e.Timeouts.Load() != 1 {
		t.Fatalf("counters = %d/%d/%d/%d", e.Requests.Load(), e.Errors.Load(), e.Shed.Load(), e.Timeouts.Load())
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := New()
	r.Endpoint("query").Record(200, 2*time.Millisecond)
	r.Endpoint("query").Record(504, 55*time.Millisecond)
	r.Algorithm("twigstack").Observe(time.Millisecond)
	s := r.Snapshot()
	if s.Endpoints["query"].Requests != 2 || s.Endpoints["query"].Timeouts != 1 {
		t.Fatalf("snapshot = %+v", s.Endpoints["query"])
	}
	if s.Algorithms["twigstack"].Count != 1 {
		t.Fatalf("algorithms = %+v", s.Algorithms)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Endpoint("query").Record(200, time.Millisecond)
				r.Algorithm("auto").Observe(time.Microsecond)
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot().Endpoints["query"].Requests; got != 4000 {
		t.Fatalf("requests = %d, want 4000", got)
	}
}
