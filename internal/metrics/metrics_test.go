package metrics

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast samples (~1ms) and 10 slow ones (~1s).
	for i := 0; i < 90; i++ {
		h.Observe(800 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(900 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 > 5 {
		t.Errorf("p50 = %vms, want ~1ms bucket", p50)
	}
	if p99 < 500 {
		t.Errorf("p99 = %vms, want the ~1s bucket", p99)
	}
	if m := h.MeanMS(); m < 80 || m > 120 {
		t.Errorf("mean = %vms, want ~90ms", m)
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.MeanMS() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(24 * time.Hour) // far past the last bound: overflow bucket
	h.Observe(-time.Second)   // negative: clamped to 0
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Quantile(0.99) <= 0 {
		t.Fatal("overflow sample lost")
	}
}

func TestEndpointRecord(t *testing.T) {
	var e Endpoint
	e.Record(200, time.Millisecond)
	e.Record(400, time.Millisecond)
	e.Record(429, time.Millisecond)
	e.Record(504, time.Millisecond)
	if e.Requests.Load() != 4 || e.Errors.Load() != 3 || e.Shed.Load() != 1 || e.Timeouts.Load() != 1 {
		t.Fatalf("counters = %d/%d/%d/%d", e.Requests.Load(), e.Errors.Load(), e.Shed.Load(), e.Timeouts.Load())
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := New()
	r.Endpoint("query").Record(200, 2*time.Millisecond)
	r.Endpoint("query").Record(504, 55*time.Millisecond)
	r.Algorithm("twigstack").Observe(time.Millisecond)
	s := r.Snapshot()
	if s.Endpoints["query"].Requests != 2 || s.Endpoints["query"].Timeouts != 1 {
		t.Fatalf("snapshot = %+v", s.Endpoints["query"])
	}
	if s.Algorithms["twigstack"].Count != 1 {
		t.Fatalf("algorithms = %+v", s.Algorithms)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Endpoint("query").Record(200, time.Millisecond)
				r.Algorithm("auto").Observe(time.Microsecond)
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot().Endpoints["query"].Requests; got != 4000 {
		t.Fatalf("requests = %d, want 4000", got)
	}
}

// TestExportCoherenceUnderLoad hammers Observe from many goroutines while
// concurrently reading Export and Snapshot, asserting the documented
// consistency contract: within one Export, Count always equals the sum of
// the bucket vector (the Prometheus +Inf invariant), and both only grow.
// Run under -race.
func TestExportCoherenceUnderLoad(t *testing.T) {
	r := New()
	h := r.Stage("join:twigstack")
	c := r.Corpus("xmark")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Observe before checking stop so each goroutine lands at
				// least one sample even if the readers finish first.
				h.Observe(300 * time.Microsecond)
				h.Observe(40 * time.Millisecond)
				c.Shard("000").Observe(time.Millisecond)
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}

	var lastCount int64
	for i := 0; i < 2000; i++ {
		e := h.Export()
		var total int64
		for _, b := range e.Buckets {
			total += b
		}
		if e.Count != total {
			t.Fatalf("Export torn: Count=%d Σbuckets=%d", e.Count, total)
		}
		if e.Count < lastCount {
			t.Fatalf("Count went backwards: %d -> %d", lastCount, e.Count)
		}
		lastCount = e.Count
		if i%100 == 0 {
			s := r.Snapshot()
			if st := s.Stages["join:twigstack"]; st.Count < 0 {
				t.Fatalf("snapshot stage count negative: %+v", st)
			}
		}
	}
	close(stop)
	wg.Wait()

	// Quiescent: everything must line up exactly, sum included.
	e := h.Export()
	var total int64
	for _, b := range e.Buckets {
		total += b
	}
	if e.Count != total || e.Count == 0 {
		t.Fatalf("final export incoherent: Count=%d Σbuckets=%d", e.Count, total)
	}
}

// TestWritePrometheus checks the text exposition: family metadata, the
// cumulative-bucket contract, and that _count agrees with _bucket{le="+Inf"}.
func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Endpoint("query").Record(200, 2*time.Millisecond)
	r.Endpoint("query").Record(429, 55*time.Millisecond)
	r.Algorithm("twigstack").Observe(time.Millisecond)
	r.Stage("parse").Observe(100 * time.Microsecond)
	cm := r.Corpus("xmark")
	cm.SetShards(4)
	cm.Swapped()
	cm.Searches.Add(3)
	cm.Fanout.Observe(9 * time.Millisecond)
	cm.Merge.Observe(time.Millisecond)
	cm.Shard("000").Observe(8 * time.Millisecond)
	cm.Shard("001").Observe(6 * time.Millisecond)

	var buf strings.Builder
	r.WritePrometheus(&buf)
	out := buf.String()

	for _, want := range []string{
		"# TYPE lotusx_uptime_seconds gauge",
		"# TYPE lotusx_endpoint_requests_total counter",
		`lotusx_endpoint_requests_total{endpoint="query"} 2`,
		`lotusx_endpoint_shed_total{endpoint="query"} 1`,
		"# TYPE lotusx_endpoint_latency_seconds histogram",
		`lotusx_endpoint_latency_seconds_count{endpoint="query"} 2`,
		`lotusx_endpoint_latency_seconds_bucket{endpoint="query",le="+Inf"} 2`,
		`lotusx_algorithm_latency_seconds_count{algorithm="twigstack"} 1`,
		`lotusx_stage_latency_seconds_count{stage="parse"} 1`,
		`lotusx_corpus_shards{corpus="xmark"} 4`,
		`lotusx_corpus_swaps_total{corpus="xmark"} 1`,
		`lotusx_corpus_searches_total{corpus="xmark"} 3`,
		`lotusx_corpus_fanout_latency_seconds_count{corpus="xmark"} 1`,
		`lotusx_corpus_shard_latency_seconds_count{corpus="xmark",shard="000"} 1`,
		`lotusx_corpus_shard_latency_seconds_count{corpus="xmark",shard="001"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Buckets must be cumulative and end exactly at _count on every series.
	var series string
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "_bucket{") {
			continue
		}
		name := line[:strings.Index(line, ",le=")]
		if name != series {
			series, prev = name, -1
		}
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket not cumulative at %q (%d < %d)", line, v, prev)
		}
		prev = v
	}

	// Deterministic output: a second render (modulo uptime) is identical.
	var buf2 strings.Builder
	r.WritePrometheus(&buf2)
	strip := func(s string) string {
		lines := strings.Split(s, "\n")
		kept := lines[:0]
		for _, l := range lines {
			// Uptime and the process gauges are live runtime readings; the
			// determinism claim is about ordering and rendering, not values.
			if strings.HasPrefix(l, "lotusx_uptime_seconds ") ||
				strings.HasPrefix(l, "lotusx_process_") {
				continue
			}
			kept = append(kept, l)
		}
		return strings.Join(kept, "\n")
	}
	if strip(buf.String()) != strip(buf2.String()) {
		t.Fatal("exposition output is not deterministic")
	}
}
