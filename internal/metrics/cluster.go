package metrics

import (
	"sync"
	"time"
)

// Metrics federation: a router periodically pulls each shard server's
// /api/v1/metrics snapshot (see internal/remote's Federator) and lands it
// here, so one scrape target — the router's /metrics and
// GET /api/v1/cluster/metrics — describes the whole cluster.  The router
// keeps the last successful snapshot of a server that stops answering
// (marked down, with the age visible), because "what was it doing right
// before it died" is exactly the question an operator asks.

// ClusterMetrics aggregates federated shard-server snapshots.
type ClusterMetrics struct {
	mu      sync.RWMutex
	servers map[string]*serverStats
}

// serverStats is the federation state of one shard server.
type serverStats struct {
	up       bool
	err      string    // last poll error, "" while up
	polled   time.Time // last successful poll
	snapshot Snapshot  // last successful snapshot
	has      bool      // a snapshot has landed at least once
}

func newClusterMetrics() *ClusterMetrics {
	return &ClusterMetrics{servers: make(map[string]*serverStats)}
}

// Cluster returns the registry's federation aggregate, creating it on first
// use (routers only; a registry that never calls this exports no
// lotusx_cluster_* families).
func (r *Registry) Cluster() *ClusterMetrics {
	r.mu.RLock()
	c := r.cluster
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cluster == nil {
		r.cluster = newClusterMetrics()
	}
	return r.cluster
}

// Update lands one successful poll of the named shard server.
func (c *ClusterMetrics) Update(server string, snap Snapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.servers[server]
	if st == nil {
		st = &serverStats{}
		c.servers[server] = st
	}
	st.up, st.err = true, ""
	st.polled = time.Now()
	st.snapshot, st.has = snap, true
}

// MarkDown records a failed poll.  The last successful snapshot is kept so
// the rollup still answers "what was it doing before it went away".
func (c *ClusterMetrics) MarkDown(server string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.servers[server]
	if st == nil {
		st = &serverStats{}
		c.servers[server] = st
	}
	st.up = false
	if err != nil {
		st.err = err.Error()
	} else {
		st.err = "unreachable"
	}
}

// ClusterServerSnapshot is the rollup view of one shard server.
type ClusterServerSnapshot struct {
	Up bool `json:"up"`
	// Error is the last poll failure; absent while up.
	Error string `json:"error,omitempty"`
	// AgeSeconds is the age of the last successful snapshot; -1 when no poll
	// ever succeeded.
	AgeSeconds float64 `json:"ageSeconds"`
	// Metrics is the server's last /api/v1/metrics snapshot, verbatim;
	// absent when no poll ever succeeded.
	Metrics *Snapshot `json:"metrics,omitempty"`
}

// ClusterSnapshot is the payload of GET /api/v1/cluster/metrics.
type ClusterSnapshot struct {
	Servers map[string]ClusterServerSnapshot `json:"servers"`
}

// Snapshot materializes the federated view.
func (c *ClusterMetrics) Snapshot() ClusterSnapshot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := ClusterSnapshot{Servers: make(map[string]ClusterServerSnapshot, len(c.servers))}
	for name, st := range c.servers {
		s := ClusterServerSnapshot{Up: st.up, Error: st.err, AgeSeconds: -1}
		if st.has {
			s.AgeSeconds = time.Since(st.polled).Seconds()
			snap := st.snapshot
			s.Metrics = &snap
		}
		out.Servers[name] = s
	}
	return out
}

// exportRow is the flattened per-server view the Prometheus renderer uses.
type clusterRow struct {
	name            string
	up              bool
	uptime          float64
	requests        int64
	errors          int64
	errorRatio      float64
	queryLatency    LatencySnapshot
	hasQueryLatency bool
}

// rows flattens the federation state for rendering, sorted by server name.
func (c *ClusterMetrics) rows() []clusterRow {
	snap := c.Snapshot()
	names := sortedKeys(snap.Servers)
	out := make([]clusterRow, 0, len(names))
	for _, name := range names {
		sv := snap.Servers[name]
		row := clusterRow{name: name, up: sv.Up}
		if sv.Metrics != nil {
			row.uptime = sv.Metrics.UptimeSeconds
			for _, ep := range sv.Metrics.Endpoints {
				row.requests += ep.Requests
				row.errors += ep.Errors
			}
			if row.requests > 0 {
				row.errorRatio = float64(row.errors) / float64(row.requests)
			}
			if q, ok := sv.Metrics.Endpoints["query"]; ok {
				row.queryLatency, row.hasQueryLatency = q.Latency, true
			}
		}
		out = append(out, row)
	}
	return out
}
