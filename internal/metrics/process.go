package metrics

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Process-level gauges: what the Go runtime says about the serving process
// itself — goroutines, heap, GC pauses — exported in both /api/v1/metrics
// and the Prometheus exposition, plus the conventional build_info family
// carrying version labels.

// ProcessSnapshot is the process slice of the metrics snapshot.
type ProcessSnapshot struct {
	Goroutines          int     `json:"goroutines"`
	HeapAllocBytes      uint64  `json:"heapAllocBytes"`
	HeapSysBytes        uint64  `json:"heapSysBytes"`
	GCCycles            uint32  `json:"gcCycles"`
	GCPauseTotalSeconds float64 `json:"gcPauseTotalSeconds"`
	GoVersion           string  `json:"goVersion"`
	Version             string  `json:"version"`
}

// processSnapshot reads the runtime's current state.  ReadMemStats costs a
// brief stop-the-world; it runs only when a snapshot or scrape asks, never
// on the request path.
func processSnapshot() ProcessSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	version, goVersion, _ := buildIdentity()
	return ProcessSnapshot{
		Goroutines:          runtime.NumGoroutine(),
		HeapAllocBytes:      ms.HeapAlloc,
		HeapSysBytes:        ms.HeapSys,
		GCCycles:            ms.NumGC,
		GCPauseTotalSeconds: time.Duration(ms.PauseTotalNs).Seconds(),
		GoVersion:           goVersion,
		Version:             version,
	}
}

var (
	buildOnce      sync.Once
	buildVersion   = "unknown"
	buildGoVersion = runtime.Version()
	buildModule    = "unknown"
)

// buildIdentity resolves the module version labels once from the binary's
// embedded build info (test binaries report their own module).
func buildIdentity() (version, goVersion, module string) {
	buildOnce.Do(func() {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.GoVersion != "" {
			buildGoVersion = bi.GoVersion
		}
		if bi.Main.Path != "" {
			buildModule = bi.Main.Path
		}
		if bi.Main.Version != "" {
			buildVersion = bi.Main.Version
		}
	})
	return buildVersion, buildGoVersion, buildModule
}
