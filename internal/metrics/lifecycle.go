package metrics

import (
	"sync/atomic"
)

// LifecycleMetrics aggregates the server's lifecycle-robustness tier: the
// graceful-drain state machine (SIGTERM flips the draining gauge, new work
// is refused while in-flight requests finish) and the durable ingest
// journal (fsync'd accept/terminal records, replay on restart, orphan spool
// sweep).  All fields are safe for concurrent use.
type LifecycleMetrics struct {
	draining      atomic.Int64 // 1 while the server is draining for shutdown
	DrainRejected atomic.Int64 // requests refused with 503 during drain

	JournalAccepted  atomic.Int64 // accept records written (durable 202 promises)
	JournalCompleted atomic.Int64 // terminal records written (done, failed, deduped)
	JournalReplayed  atomic.Int64 // pending records re-enqueued at startup
	journalPending   atomic.Int64 // accepted jobs without a terminal record
	OrphansSwept     atomic.Int64 // orphaned spool files removed at startup
}

// SetDraining records whether the server is draining (the /readyz flip).
func (m *LifecycleMetrics) SetDraining(on bool) {
	v := int64(0)
	if on {
		v = 1
	}
	m.draining.Store(v)
}

// Draining returns 1 while the server drains, else 0.
func (m *LifecycleMetrics) Draining() int64 { return m.draining.Load() }

// SetJournalPending records the journal's live pending-record count.
func (m *LifecycleMetrics) SetJournalPending(n int) { m.journalPending.Store(int64(n)) }

// JournalPending returns the last recorded pending-record count.
func (m *LifecycleMetrics) JournalPending() int64 { return m.journalPending.Load() }

// Lifecycle returns the registry's lifecycle metrics, creating them on first
// use.  Like the ingest pipeline, drain state and the journal are per-server
// singletons rather than named families.
func (r *Registry) Lifecycle() *LifecycleMetrics {
	r.mu.RLock()
	m := r.lifecycle
	r.mu.RUnlock()
	if m != nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lifecycle == nil {
		r.lifecycle = &LifecycleMetrics{}
	}
	return r.lifecycle
}

// LifecycleSnapshot is the JSON shape of the lifecycle metrics.
type LifecycleSnapshot struct {
	Draining         bool  `json:"draining"`
	DrainRejected    int64 `json:"drainRejected,omitempty"`
	JournalAccepted  int64 `json:"journalAccepted,omitempty"`
	JournalCompleted int64 `json:"journalCompleted,omitempty"`
	JournalReplayed  int64 `json:"journalReplayed,omitempty"`
	JournalPending   int64 `json:"journalPending,omitempty"`
	OrphansSwept     int64 `json:"orphanSpoolsSwept,omitempty"`
}

func (m *LifecycleMetrics) snapshot() LifecycleSnapshot {
	return LifecycleSnapshot{
		Draining:         m.draining.Load() != 0,
		DrainRejected:    m.DrainRejected.Load(),
		JournalAccepted:  m.JournalAccepted.Load(),
		JournalCompleted: m.JournalCompleted.Load(),
		JournalReplayed:  m.JournalReplayed.Load(),
		JournalPending:   m.journalPending.Load(),
		OrphansSwept:     m.OrphansSwept.Load(),
	}
}

// AdmissionMetrics aggregates per-client admission control (the token-bucket
// rate limiter in internal/httpmw) and the router-side retry budget that
// caps hedges and failovers as a fraction of primary traffic.
type AdmissionMetrics struct {
	Allowed atomic.Int64 // requests that consumed a token and proceeded
	Limited atomic.Int64 // requests refused with 429 + Retry-After
	Evicted atomic.Int64 // idle client buckets evicted from the table
	clients atomic.Int64 // live client buckets (gauge)

	RetryBudgetGranted atomic.Int64 // hedges/failovers the budget allowed
	RetryBudgetDenied  atomic.Int64 // hedges/failovers skipped: budget spent
}

// SetClients records the live client-bucket count.
func (m *AdmissionMetrics) SetClients(n int) { m.clients.Store(int64(n)) }

// Clients returns the last recorded client-bucket count.
func (m *AdmissionMetrics) Clients() int64 { return m.clients.Load() }

// Admission returns the registry's admission-control metrics, creating them
// on first use.
func (r *Registry) Admission() *AdmissionMetrics {
	r.mu.RLock()
	m := r.admission
	r.mu.RUnlock()
	if m != nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.admission == nil {
		r.admission = &AdmissionMetrics{}
	}
	return r.admission
}

// AdmissionSnapshot is the JSON shape of the admission-control metrics.
type AdmissionSnapshot struct {
	Allowed            int64 `json:"allowed"`
	Limited            int64 `json:"limited"`
	Evicted            int64 `json:"evicted,omitempty"`
	Clients            int64 `json:"clients"`
	RetryBudgetGranted int64 `json:"retryBudgetGranted,omitempty"`
	RetryBudgetDenied  int64 `json:"retryBudgetDenied,omitempty"`
}

func (m *AdmissionMetrics) snapshot() AdmissionSnapshot {
	return AdmissionSnapshot{
		Allowed:            m.Allowed.Load(),
		Limited:            m.Limited.Load(),
		Evicted:            m.Evicted.Load(),
		Clients:            m.clients.Load(),
		RetryBudgetGranted: m.RetryBudgetGranted.Load(),
		RetryBudgetDenied:  m.RetryBudgetDenied.Load(),
	}
}
