// Package dataset generates the synthetic stand-ins for the datasets the
// LotusX demo ran on.  The real DBLP, XMark and TreeBank files are not
// available offline, so three deterministic generators reproduce the
// structural properties that matter for twig evaluation and completion:
//
//   - dblp: a shallow, wide bibliography with repetitive entry shapes, a
//     small tag vocabulary, and skewed value frequencies (author names
//     recur) — the auto-completion showcase.
//   - xmark: an auction site with moderate depth, many entity kinds,
//     cross-entity attributes and free-text descriptions — the general twig
//     workload.
//   - treebank: deeply recursive grammar trees with the same tags nested
//     many levels (S, NP, VP, ...) — the stress case for stack-based joins
//     and order-sensitive queries.
//
// Generators are deterministic in (kind, scale, seed); documents grow
// linearly with scale.
package dataset

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/rand"

	"lotusx/internal/doc"
)

// Kind names a generator.
type Kind string

// The available dataset kinds.
const (
	DBLP     Kind = "dblp"
	XMark    Kind = "xmark"
	TreeBank Kind = "treebank"
)

// Kinds lists all generators.
var Kinds = []Kind{DBLP, XMark, TreeBank}

// Generate writes a synthetic document of the given kind and scale to w.
// Scale 1 produces on the order of 10k-40k nodes depending on the kind.
func Generate(kind Kind, scale int, seed int64, w io.Writer) error {
	if scale < 1 {
		return fmt.Errorf("dataset: scale must be >= 1, got %d", scale)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	rng := rand.New(rand.NewSource(seed))
	var err error
	switch kind {
	case DBLP:
		err = genDBLP(bw, rng, scale)
	case XMark:
		err = genXMark(bw, rng, scale)
	case TreeBank:
		err = genTreeBank(bw, rng, scale)
	default:
		return fmt.Errorf("dataset: unknown kind %q", kind)
	}
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Build generates a document of the given kind in memory and parses it.
func Build(kind Kind, scale int, seed int64) (*doc.Document, error) {
	var buf bytes.Buffer
	if err := Generate(kind, scale, seed, &buf); err != nil {
		return nil, err
	}
	return doc.FromReader(fmt.Sprintf("%s-s%d", kind, scale), &buf)
}

// --- shared vocabulary ---

var firstNames = []string{
	"wei", "jiaheng", "chunbin", "mary", "john", "bogdan", "tok", "anna",
	"li", "david", "elena", "marco", "yuki", "priya", "omar", "sofia",
}

var lastNames = []string{
	"lu", "lin", "ling", "cautis", "smith", "zhang", "garcia", "tanaka",
	"mueller", "ivanov", "rossi", "chen", "patel", "kim", "olsen", "silva",
}

var titleWords = []string{
	"xml", "twig", "query", "holistic", "join", "index", "search", "graph",
	"stream", "pattern", "structural", "ranking", "adaptive", "efficient",
	"scalable", "distributed", "semantic", "keyword", "schema", "path",
}

var venueWords = []string{
	"sigmod", "vldb", "icde", "edbt", "cikm", "www", "kdd", "tods",
}

var descWords = []string{
	"vintage", "rare", "excellent", "condition", "shipping", "included",
	"original", "collector", "edition", "antique", "modern", "classic",
	"handmade", "limited", "signed", "restored",
}

var cities = []string{
	"beijing", "paris", "boston", "tokyo", "berlin", "sydney", "cairo",
	"toronto", "madrid", "seoul",
}

func pick(rng *rand.Rand, pool []string) string { return pool[rng.Intn(len(pool))] }

func personName(rng *rand.Rand) string {
	return pick(rng, firstNames) + " " + pick(rng, lastNames)
}

func phrase(rng *rand.Rand, pool []string, n int) string {
	var b bytes.Buffer
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(pick(rng, pool))
	}
	return b.String()
}
