package dataset

import (
	"bufio"
	"fmt"
	"math/rand"
)

// genTreeBank emits deeply recursive parse trees in the spirit of the Penn
// TreeBank XML encoding: sentences expand through a small probabilistic
// grammar whose nonterminals (S, NP, VP, PP, SBAR, ADJP) nest recursively —
// the same tag many levels deep, which is where holistic stack joins shine
// and naive matching degenerates.  Scale 1 is ~400 sentences (~20k nodes).
func genTreeBank(w *bufio.Writer, rng *rand.Rand, scale int) error {
	sentences := 400 * scale
	w.WriteString("<FILE>\n")
	for i := 0; i < sentences; i++ {
		w.WriteString("  <EMPTY>\n")
		genS(w, rng, 0)
		w.WriteString("  </EMPTY>\n")
	}
	w.WriteString("</FILE>\n")
	return nil
}

var nouns = []string{"cat", "dog", "report", "market", "price", "company", "plan", "share"}
var verbs = []string{"sees", "buys", "sells", "reads", "writes", "holds", "moves", "finds"}
var preps = []string{"in", "on", "with", "under", "over"}
var adjs = []string{"quick", "lazy", "big", "new", "old", "public"}

// genS emits an S subtree; depth bounds the recursion.
func genS(w *bufio.Writer, rng *rand.Rand, depth int) {
	w.WriteString("<S>")
	genNP(w, rng, depth+1)
	genVP(w, rng, depth+1)
	if depth < 3 && rng.Intn(4) == 0 {
		// Subordinate clause: S recurses through SBAR.
		w.WriteString("<SBAR>")
		genS(w, rng, depth+2)
		w.WriteString("</SBAR>")
	}
	w.WriteString("</S>\n")
}

func genNP(w *bufio.Writer, rng *rand.Rand, depth int) {
	w.WriteString("<NP>")
	if depth < 8 && rng.Intn(3) == 0 {
		fmt.Fprintf(w, "<ADJP><JJ>%s</JJ></ADJP>", pick(rng, adjs))
	}
	fmt.Fprintf(w, "<NN>%s</NN>", pick(rng, nouns))
	if depth < 10 && rng.Intn(3) == 0 {
		genPP(w, rng, depth+1)
	}
	w.WriteString("</NP>")
}

func genVP(w *bufio.Writer, rng *rand.Rand, depth int) {
	w.WriteString("<VP>")
	fmt.Fprintf(w, "<VB>%s</VB>", pick(rng, verbs))
	if depth < 10 {
		switch rng.Intn(3) {
		case 0:
			genNP(w, rng, depth+1)
		case 1:
			genNP(w, rng, depth+1)
			genPP(w, rng, depth+1)
		}
	}
	w.WriteString("</VP>")
}

func genPP(w *bufio.Writer, rng *rand.Rand, depth int) {
	w.WriteString("<PP>")
	fmt.Fprintf(w, "<IN>%s</IN>", pick(rng, preps))
	genNP(w, rng, depth+1)
	w.WriteString("</PP>")
}
