package dataset

import (
	"bufio"
	"fmt"
	"math/rand"
)

// genXMark emits an auction site modeled on the XMark benchmark schema:
// regions with items, people with profiles, open auctions with bidder
// sequences (document order matters: bids arrive chronologically, the
// order-sensitive query workload), and closed auctions.  Scale 1 is ~300
// items / 150 people / 120 auctions (~15k nodes).
func genXMark(w *bufio.Writer, rng *rand.Rand, scale int) error {
	items := 300 * scale
	people := 150 * scale
	open := 120 * scale
	closed := 80 * scale
	regions := []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}

	w.WriteString("<site>\n  <regions>\n")
	for _, region := range regions {
		fmt.Fprintf(w, "    <%s>\n", region)
		for i := 0; i < items/len(regions); i++ {
			id := itemID(region, i)
			fmt.Fprintf(w, "      <item id=\"%s\">\n", id)
			fmt.Fprintf(w, "        <name>%s</name>\n", phrase(rng, descWords, 2))
			fmt.Fprintf(w, "        <location>%s</location>\n", pick(rng, cities))
			fmt.Fprintf(w, "        <quantity>%d</quantity>\n", 1+rng.Intn(5))
			w.WriteString("        <description><text>")
			w.WriteString(phrase(rng, descWords, 4+rng.Intn(8)))
			w.WriteString("</text></description>\n")
			if rng.Intn(2) == 0 {
				fmt.Fprintf(w, "        <payment>%s</payment>\n", pick(rng, []string{"cash", "check", "credit"}))
			}
			if rng.Intn(3) == 0 {
				w.WriteString("        <shipping>worldwide</shipping>\n")
			}
			w.WriteString("      </item>\n")
		}
		fmt.Fprintf(w, "    </%s>\n", region)
	}
	w.WriteString("  </regions>\n  <people>\n")
	for i := 0; i < people; i++ {
		fmt.Fprintf(w, "    <person id=\"person%d\">\n", i)
		fmt.Fprintf(w, "      <name>%s</name>\n", personName(rng))
		fmt.Fprintf(w, "      <emailaddress>mailto:p%d@example.net</emailaddress>\n", i)
		if rng.Intn(2) == 0 {
			fmt.Fprintf(w, "      <phone>+%d</phone>\n", 1000000+rng.Intn(9000000))
		}
		if rng.Intn(3) != 0 {
			w.WriteString("      <profile>\n")
			fmt.Fprintf(w, "        <age>%d</age>\n", 18+rng.Intn(60))
			fmt.Fprintf(w, "        <income>%d</income>\n", 20000+rng.Intn(80000))
			for j := 0; j < rng.Intn(3); j++ {
				fmt.Fprintf(w, "        <interest category=\"cat%d\"/>\n", rng.Intn(20))
			}
			w.WriteString("      </profile>\n")
		}
		if rng.Intn(4) == 0 {
			w.WriteString("      <watches>\n")
			for j := 0; j < 1+rng.Intn(3); j++ {
				fmt.Fprintf(w, "        <watch open_auction=\"auction%d\"/>\n", rng.Intn(open))
			}
			w.WriteString("      </watches>\n")
		}
		w.WriteString("    </person>\n")
	}
	w.WriteString("  </people>\n  <open_auctions>\n")
	for i := 0; i < open; i++ {
		region := regions[rng.Intn(len(regions))]
		fmt.Fprintf(w, "    <open_auction id=\"auction%d\">\n", i)
		fmt.Fprintf(w, "      <initial>%d.%02d</initial>\n", 1+rng.Intn(200), rng.Intn(100))
		// Bidders are emitted in chronological (document) order: each
		// increase follows its date — the order-sensitive workload.
		price := 1 + rng.Intn(200)
		for b := 0; b < rng.Intn(5); b++ {
			w.WriteString("      <bidder>\n")
			fmt.Fprintf(w, "        <date>%02d/%02d/2011</date>\n", 1+rng.Intn(12), 1+rng.Intn(28))
			fmt.Fprintf(w, "        <personref person=\"person%d\"/>\n", rng.Intn(people))
			price += 1 + rng.Intn(20)
			fmt.Fprintf(w, "        <increase>%d.00</increase>\n", price)
			w.WriteString("      </bidder>\n")
		}
		fmt.Fprintf(w, "      <current>%d.00</current>\n", price)
		fmt.Fprintf(w, "      <itemref item=\"%s\"/>\n", itemID(region, rng.Intn(items/len(regions)+1)))
		fmt.Fprintf(w, "      <seller person=\"person%d\"/>\n", rng.Intn(people))
		fmt.Fprintf(w, "      <quantity>%d</quantity>\n", 1+rng.Intn(3))
		w.WriteString("    </open_auction>\n")
	}
	w.WriteString("  </open_auctions>\n  <closed_auctions>\n")
	for i := 0; i < closed; i++ {
		region := regions[rng.Intn(len(regions))]
		w.WriteString("    <closed_auction>\n")
		fmt.Fprintf(w, "      <seller person=\"person%d\"/>\n", rng.Intn(people))
		fmt.Fprintf(w, "      <buyer person=\"person%d\"/>\n", rng.Intn(people))
		fmt.Fprintf(w, "      <itemref item=\"%s\"/>\n", itemID(region, rng.Intn(items/len(regions)+1)))
		fmt.Fprintf(w, "      <price>%d.00</price>\n", 5+rng.Intn(500))
		fmt.Fprintf(w, "      <date>%02d/%02d/2011</date>\n", 1+rng.Intn(12), 1+rng.Intn(28))
		if rng.Intn(2) == 0 {
			w.WriteString("      <annotation><description><text>")
			w.WriteString(phrase(rng, descWords, 3+rng.Intn(5)))
			w.WriteString("</text></description></annotation>\n")
		}
		w.WriteString("    </closed_auction>\n")
	}
	w.WriteString("  </closed_auctions>\n</site>\n")
	return nil
}

func itemID(region string, i int) string {
	return fmt.Sprintf("item_%s_%d", region, i)
}
