package dataset

import (
	"bufio"
	"fmt"
	"math/rand"
)

// genDBLP emits a bibliography: wide, shallow, repetitive — scale 1 is
// ~1200 entries (~10k nodes).  Entry kinds follow DBLP's skew: mostly
// inproceedings and articles, few books and theses.
func genDBLP(w *bufio.Writer, rng *rand.Rand, scale int) error {
	entries := 1200 * scale
	w.WriteString("<dblp>\n")
	for i := 0; i < entries; i++ {
		kind := "inproceedings"
		switch r := rng.Intn(100); {
		case r < 40:
			kind = "article"
		case r < 90:
			kind = "inproceedings"
		case r < 97:
			kind = "book"
		default:
			kind = "phdthesis"
		}
		fmt.Fprintf(w, "  <%s key=\"%s/%d\" mdate=\"20%02d-%02d-%02d\">\n",
			kind, kind[:2], i, 10+rng.Intn(14), 1+rng.Intn(12), 1+rng.Intn(28))
		nauth := 1 + rng.Intn(4)
		if kind == "phdthesis" {
			nauth = 1
		}
		for a := 0; a < nauth; a++ {
			fmt.Fprintf(w, "    <author>%s</author>\n", personName(rng))
		}
		fmt.Fprintf(w, "    <title>%s</title>\n", phrase(rng, titleWords, 3+rng.Intn(5)))
		fmt.Fprintf(w, "    <year>%d</year>\n", 1995+rng.Intn(18))
		switch kind {
		case "article":
			fmt.Fprintf(w, "    <journal>%s journal</journal>\n", pick(rng, venueWords))
			fmt.Fprintf(w, "    <volume>%d</volume>\n", 1+rng.Intn(40))
			fmt.Fprintf(w, "    <pages>%d-%d</pages>\n", 1+rng.Intn(400), 401+rng.Intn(100))
		case "inproceedings":
			fmt.Fprintf(w, "    <booktitle>%s</booktitle>\n", pick(rng, venueWords))
			fmt.Fprintf(w, "    <pages>%d-%d</pages>\n", 1+rng.Intn(400), 401+rng.Intn(100))
			if rng.Intn(3) == 0 {
				fmt.Fprintf(w, "    <ee>https://doi.example/%d</ee>\n", i)
			}
		case "book":
			fmt.Fprintf(w, "    <publisher>%s press</publisher>\n", pick(rng, cities))
			fmt.Fprintf(w, "    <isbn>978-%09d</isbn>\n", rng.Intn(1e9))
		case "phdthesis":
			fmt.Fprintf(w, "    <school>university of %s</school>\n", pick(rng, cities))
		}
		if rng.Intn(4) == 0 {
			fmt.Fprintf(w, "    <cite>%s/%d</cite>\n", kind[:2], rng.Intn(entries))
		}
		fmt.Fprintf(w, "  </%s>\n", kind)
	}
	w.WriteString("</dblp>\n")
	return nil
}
