package dataset

import (
	"bytes"
	"strings"
	"testing"

	"lotusx/internal/doc"
	"lotusx/internal/index"
	"lotusx/internal/join"
	"lotusx/internal/twig"
)

func TestGenerateAllKindsParse(t *testing.T) {
	for _, kind := range Kinds {
		t.Run(string(kind), func(t *testing.T) {
			d, err := Build(kind, 1, 42)
			if err != nil {
				t.Fatal(err)
			}
			if d.Len() < 5000 {
				t.Errorf("%s scale 1 = %d nodes, want >= 5000", kind, d.Len())
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	for _, kind := range Kinds {
		var a, b bytes.Buffer
		if err := Generate(kind, 1, 7, &a); err != nil {
			t.Fatal(err)
		}
		if err := Generate(kind, 1, 7, &b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s not deterministic", kind)
		}
		var c bytes.Buffer
		if err := Generate(kind, 1, 8, &c); err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(a.Bytes(), c.Bytes()) {
			t.Errorf("%s ignores the seed", kind)
		}
	}
}

func TestScaleGrowsLinearly(t *testing.T) {
	d1, err := Build(DBLP, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	d3, err := Build(DBLP, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(d3.Len()) / float64(d1.Len())
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("scale 3 / scale 1 node ratio = %f, want ~3", ratio)
	}
}

func TestGenerateErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Generate(Kind("nope"), 1, 1, &buf); err == nil {
		t.Error("unknown kind should fail")
	}
	if err := Generate(DBLP, 0, 1, &buf); err == nil {
		t.Error("scale 0 should fail")
	}
}

func TestDBLPShape(t *testing.T) {
	d, err := Build(DBLP, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(d)
	tags := d.Tags()
	for _, tag := range []string{"dblp", "article", "inproceedings", "book",
		"phdthesis", "author", "title", "year", "@key", "@mdate"} {
		if tags.ID(tag) == doc.NoTag {
			t.Errorf("dblp missing tag %q", tag)
		}
	}
	// Author names recur: the completion showcase needs skew.
	if df := ix.DF("lu"); df < 50 {
		t.Errorf("author token df = %d, want heavy recurrence", df)
	}
	// Real twig queries return work.
	res, err := join.Run(ix, twig.MustParse(`//article[author][year]/title`), join.TwigStack, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) < 100 {
		t.Errorf("canonical dblp query matched %d, want plenty", len(res.Matches))
	}
}

func TestXMarkShape(t *testing.T) {
	d, err := Build(XMark, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(d)
	tags := d.Tags()
	for _, tag := range []string{"site", "regions", "item", "person",
		"open_auction", "closed_auction", "bidder", "increase", "@id",
		"profile", "description"} {
		if tags.ID(tag) == doc.NoTag {
			t.Errorf("xmark missing tag %q", tag)
		}
	}
	// Bidder sequences exist (order-sensitive workload).
	res, err := join.Run(ix, twig.MustParse(`//open_auction[bidder << current]`), join.TwigStack, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Error("no auctions with bidders before current")
	}
	// Items are moderately deep.
	itemDepth := false
	for _, n := range ix.Nodes(tags.ID("text")) {
		if d.Region(n).Level >= 4 {
			itemDepth = true
			break
		}
	}
	if !itemDepth {
		t.Error("xmark lacks nested description text")
	}
}

func TestTreeBankShape(t *testing.T) {
	d, err := Build(TreeBank, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	tags := d.Tags()
	for _, tag := range []string{"FILE", "S", "NP", "VP", "PP", "NN", "VB", "SBAR"} {
		if tags.ID(tag) == doc.NoTag {
			t.Errorf("treebank missing tag %q", tag)
		}
	}
	// Recursion: some NP nested at level >= 8.
	ix := index.Build(d)
	deep := false
	for _, n := range ix.Nodes(tags.ID("NP")) {
		if d.Region(n).Level >= 8 {
			deep = true
			break
		}
	}
	if !deep {
		t.Error("treebank lacks deep recursion")
	}
	// Recursive twig works: S inside S.
	res, err := join.Run(ix, twig.MustParse(`//S//S`), join.TwigStack, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Error("no nested sentences")
	}
}

func TestBuildNameEncodesKindAndScale(t *testing.T) {
	d, err := Build(DBLP, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.Name(), "dblp") || !strings.Contains(d.Name(), "2") {
		t.Errorf("name = %q", d.Name())
	}
}
