package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"lotusx/internal/join"
	"lotusx/internal/twig"
)

const ctxBibXML = `<dblp>
  <article><author>a</author><title>t1</title></article>
  <article><author>b</author><title>t2</title></article>
  <article><author>c</author><title>t3</title></article>
</dblp>`

func ctxEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := FromReader("bib", strings.NewReader(ctxBibXML))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSearchContextCancelled(t *testing.T) {
	e := ctxEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.SearchStringContext(ctx, "//article/title", SearchOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Rewriting must not mask the cancellation either.
	_, err = e.SearchStringContext(ctx, "//article/titel", SearchOptions{Rewrite: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("rewrite err = %v, want context.Canceled", err)
	}
}

func TestSearchContextBackgroundMatchesSearch(t *testing.T) {
	e := ctxEngine(t)
	q := twig.MustParse("//article/title")
	res, err := e.SearchContext(context.Background(), q, SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 3 || res.Total != 3 {
		t.Fatalf("answers = %d total = %d, want 3/3", len(res.Answers), res.Total)
	}
	if res.Algorithm != join.TwigStack {
		t.Fatalf("Algorithm = %q, want default twigstack", res.Algorithm)
	}
}

func TestSearchTotalAndPaging(t *testing.T) {
	e := ctxEngine(t)
	// Page 1: k=2 cuts materialization at 2 — more answers may exist.
	res, err := e.SearchString("//article/title", SearchOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 || res.Total != 2 {
		t.Fatalf("page1: answers = %d total = %d, want 2/2", len(res.Answers), res.Total)
	}
	// Page 2: offset=2 materializes up to 4 but only 3 exist; Total < want
	// signals the last page.
	res, err = e.SearchString("//article/title", SearchOptions{K: 2, Offset: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || res.Total != 3 {
		t.Fatalf("page2: answers = %d total = %d, want 1/3", len(res.Answers), res.Total)
	}
}
