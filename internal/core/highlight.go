package core

import (
	"strings"

	"lotusx/internal/doc"
	"lotusx/internal/index"
	"lotusx/internal/join"
	"lotusx/internal/twig"
)

// Span marks a half-open byte range [Start, End) inside a node's value.
type Span struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// Highlight explains why one match satisfied one value predicate: the
// document node bound to the predicate's query node, its value, and the
// byte spans of the matched terms — what the GUI underlines in each answer.
type Highlight struct {
	QueryNodeID int        `json:"queryNode"`
	Tag         string     `json:"tag"`
	Node        doc.NodeID `json:"node"`
	Value       string     `json:"value"`
	Spans       []Span     `json:"spans"`
}

// Highlights computes the term highlights of one match under q.  Matches of
// predicate-free queries highlight nothing.
func (e *Engine) Highlights(q *twig.Query, m join.Match) []Highlight {
	d := e.ix.Document()
	var out []Highlight
	for _, qn := range q.Nodes() {
		if qn.Pred.Op == twig.NoPred {
			continue
		}
		node := m[qn.ID]
		value := d.Value(node)
		h := Highlight{
			QueryNodeID: qn.ID,
			Tag:         d.TagName(node),
			Node:        node,
			Value:       value,
		}
		switch qn.Pred.Op {
		case twig.Eq:
			// The whole value matched.
			h.Spans = []Span{{Start: 0, End: len(value)}}
		case twig.Contains:
			wanted := make(map[string]struct{})
			for _, tok := range index.Tokenize(qn.Pred.Value) {
				wanted[tok] = struct{}{}
			}
			for _, ts := range index.TokenizeSpans(value) {
				if _, ok := wanted[ts.Token]; ok {
					h.Spans = append(h.Spans, Span{Start: ts.Start, End: ts.End})
				}
			}
		}
		out = append(out, h)
	}
	return out
}

// Underline renders a value with its spans marked, for terminals and tests:
// "holistic >>twig<< joins".
func Underline(value string, spans []Span) string {
	if len(spans) == 0 {
		return value
	}
	var b strings.Builder
	pos := 0
	for _, sp := range spans {
		if sp.Start < pos || sp.End > len(value) {
			continue // overlapping or out-of-range spans are skipped
		}
		b.WriteString(value[pos:sp.Start])
		b.WriteString(">>")
		b.WriteString(value[sp.Start:sp.End])
		b.WriteString("<<")
		pos = sp.End
	}
	b.WriteString(value[pos:])
	return b.String()
}
