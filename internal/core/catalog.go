package core

import (
	"fmt"
	"sort"
	"sync"
)

// Catalog holds several named datasets — the demo served DBLP, XMark and
// TreeBank side by side with a dataset selector.  Each entry is a Backend: a
// single Engine or a sharded corpus.  Lookups are cheap and concurrent;
// mutations are synchronized so datasets can be loaded, replaced or dropped
// in the background while the server is already answering on the others.
type Catalog struct {
	mu       sync.RWMutex
	backends map[string]Backend
	// defaultName is the dataset used when a request names none.
	defaultName string
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{backends: make(map[string]Backend)}
}

// Add registers an engine under name; see AddBackend.
func (c *Catalog) Add(name string, e *Engine) { c.AddBackend(name, e) }

// AddBackend registers a backend under name.  The first dataset added
// becomes the default; re-adding a name replaces the backend in place, and a
// replaced default stays the default (it is never silently orphaned).  If
// the default was previously lost (e.g. the catalog was emptied by Remove),
// the added dataset becomes the new default.
func (c *Catalog) AddBackend(name string, b Backend) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.backends[c.defaultName]; !ok {
		// No live default — either an empty catalog or a stale name.
		c.defaultName = name
	}
	c.backends[name] = b
}

// Remove drops the dataset registered under name.  Removing the default
// reassigns the default to the first remaining dataset in sorted-name order
// (requests naming no dataset keep working); removing the last dataset
// leaves an empty catalog whose next Add becomes the default.  Removing an
// unknown name is an error.
func (c *Catalog) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.backends[name]; !ok {
		return fmt.Errorf("core: no dataset %q in catalog", name)
	}
	delete(c.backends, name)
	if c.defaultName == name {
		c.defaultName = ""
		rest := make([]string, 0, len(c.backends))
		for n := range c.backends {
			rest = append(rest, n)
		}
		sort.Strings(rest)
		if len(rest) > 0 {
			c.defaultName = rest[0]
		}
	}
	return nil
}

// Get returns the single engine registered under name; an empty name
// returns the default dataset.  A corpus-backed dataset is an error here —
// use GetBackend for the shard-agnostic surface.
func (c *Catalog) Get(name string) (*Engine, error) {
	b, err := c.GetBackend(name)
	if err != nil {
		return nil, err
	}
	e, ok := b.(*Engine)
	if !ok {
		return nil, fmt.Errorf("core: dataset %q is not a single engine (kind %q)", name, b.Info().Kind)
	}
	return e, nil
}

// GetBackend returns the backend registered under name; an empty name
// returns the default dataset.
func (c *Catalog) GetBackend(name string) (Backend, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if name == "" {
		name = c.defaultName
	}
	b, ok := c.backends[name]
	if !ok {
		return nil, fmt.Errorf("core: no dataset %q in catalog", name)
	}
	return b, nil
}

// DefaultName returns the name of the default dataset, "" when the catalog
// is empty.
func (c *Catalog) DefaultName() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.defaultName
}

// Names lists the registered datasets, sorted, with the default first.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.backends))
	for n := range c.backends {
		if n != c.defaultName {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if c.defaultName != "" {
		names = append([]string{c.defaultName}, names...)
	}
	return names
}

// Len returns the number of registered datasets.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.backends)
}
