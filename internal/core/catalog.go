package core

import (
	"fmt"
	"sort"
	"sync"
)

// Catalog holds several named engines — the demo served DBLP, XMark and
// TreeBank side by side with a dataset selector.  Lookups are cheap and
// concurrent; Add is synchronized so datasets can be loaded in the
// background while the server is already answering on the others.
type Catalog struct {
	mu      sync.RWMutex
	engines map[string]*Engine
	// defaultName is the dataset used when a request names none.
	defaultName string
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{engines: make(map[string]*Engine)}
}

// Add registers an engine under name; the first engine added becomes the
// default.  Re-adding a name replaces the engine.
func (c *Catalog) Add(name string, e *Engine) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.engines) == 0 {
		c.defaultName = name
	}
	c.engines[name] = e
}

// Get returns the engine registered under name; an empty name returns the
// default engine.
func (c *Catalog) Get(name string) (*Engine, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if name == "" {
		name = c.defaultName
	}
	e, ok := c.engines[name]
	if !ok {
		return nil, fmt.Errorf("core: no dataset %q in catalog", name)
	}
	return e, nil
}

// Names lists the registered datasets, sorted, with the default first.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.engines))
	for n := range c.engines {
		if n != c.defaultName {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if c.defaultName != "" {
		names = append([]string{c.defaultName}, names...)
	}
	return names
}

// Len returns the number of registered datasets.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.engines)
}
