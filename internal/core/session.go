package core

import (
	"context"
	"fmt"

	"lotusx/internal/complete"
	"lotusx/internal/twig"
)

// Session models the GUI's interactive query construction: the user grows a
// twig node by node, asking for position-aware candidates at every step.
// Nodes are addressed by stable handles (the twig's preorder IDs change as
// the tree grows, handles do not).  A Session is not safe for concurrent
// use; the Backend behind it is.
type Session struct {
	backend Backend
	query   *twig.Query
	handles map[int]*twig.Node
	nextH   int
	// orders holds order constraints as node pairs; preorder IDs shift as
	// the twig grows, so normalize() re-derives Query.Order from these.
	orders [][2]*twig.Node
}

// NewSession starts an empty query-building session over one engine.
func (e *Engine) NewSession() *Session { return NewSession(e) }

// NewSession starts an empty query-building session over any backend —
// against a sharded corpus, candidates and answers merge across shards.
func NewSession(b Backend) *Session {
	return &Session{backend: b, handles: make(map[int]*twig.Node)}
}

// Root creates the query root with the given tag and axis (twig.Descendant
// to search anywhere, twig.Child to anchor at the document root) and
// returns its handle.
func (s *Session) Root(tag string, axis twig.Axis) (int, error) {
	if s.query != nil {
		return 0, fmt.Errorf("session: root already set")
	}
	s.query = &twig.Query{Root: &twig.Node{Tag: tag, Axis: axis}}
	return s.register(s.query.Root), nil
}

// AddNode attaches a new node under the anchor handle and returns the new
// node's handle.
func (s *Session) AddNode(anchor int, axis twig.Axis, tag string) (int, error) {
	an, err := s.node(anchor)
	if err != nil {
		return 0, err
	}
	child := an.AddChild(tag, axis)
	return s.register(child), nil
}

// SetPredicate sets the value predicate of the node with the given handle.
func (s *Session) SetPredicate(handle int, op twig.PredOp, value string) error {
	n, err := s.node(handle)
	if err != nil {
		return err
	}
	n.Pred = twig.Pred{Op: op, Value: value}
	return nil
}

// SetTag renames the node with the given handle (the GUI lets users edit a
// node after accepting a suggestion).
func (s *Session) SetTag(handle int, tag string) error {
	n, err := s.node(handle)
	if err != nil {
		return err
	}
	n.Tag = tag
	return nil
}

// SetAxis changes how the node with the given handle relates to its parent
// (or, for the root, to the document root).
func (s *Session) SetAxis(handle int, axis twig.Axis) error {
	n, err := s.node(handle)
	if err != nil {
		return err
	}
	n.Axis = axis
	return nil
}

// RemoveNode deletes the node with the given handle and its whole subtree —
// the GUI's delete button.  The root cannot be removed (start a new session
// instead).  Handles inside the removed subtree become invalid, and order
// constraints touching it are dropped.
func (s *Session) RemoveNode(handle int) error {
	n, err := s.node(handle)
	if err != nil {
		return err
	}
	if n == s.query.Root {
		return fmt.Errorf("session: cannot remove the root node")
	}
	// Find the parent by scanning from the root (sessions are small trees;
	// twig.Node parent pointers are only valid after Normalize).
	parent := findParent(s.query.Root, n)
	if parent == nil {
		return fmt.Errorf("session: node %d is no longer in the query", handle)
	}
	kids := parent.Children[:0]
	for _, c := range parent.Children {
		if c != n {
			kids = append(kids, c)
		}
	}
	parent.Children = kids

	// Invalidate handles and drop order constraints under the subtree.
	removed := make(map[*twig.Node]bool)
	var mark func(x *twig.Node)
	mark = func(x *twig.Node) {
		removed[x] = true
		for _, c := range x.Children {
			mark(c)
		}
	}
	mark(n)
	for h, hn := range s.handles {
		if removed[hn] {
			delete(s.handles, h)
		}
	}
	kept := s.orders[:0]
	for _, pr := range s.orders {
		if !removed[pr[0]] && !removed[pr[1]] {
			kept = append(kept, pr)
		}
	}
	s.orders = kept
	return s.normalize()
}

// findParent locates n's parent by tree walk from root.
func findParent(root, n *twig.Node) *twig.Node {
	for _, c := range root.Children {
		if c == n {
			return root
		}
		if p := findParent(c, n); p != nil {
			return p
		}
	}
	return nil
}

// SetOutput marks the node with the given handle as the query's output.
func (s *Session) SetOutput(handle int) error {
	n, err := s.node(handle)
	if err != nil {
		return err
	}
	for _, other := range s.handles {
		other.Output = false
	}
	n.Output = true
	return nil
}

// AddOrder constrains the match of the before handle to precede the match
// of the after handle in document order.
func (s *Session) AddOrder(before, after int) error {
	bn, err := s.node(before)
	if err != nil {
		return err
	}
	an, err := s.node(after)
	if err != nil {
		return err
	}
	if bn == an {
		return fmt.Errorf("session: order constraint needs two distinct nodes")
	}
	s.orders = append(s.orders, [2]*twig.Node{bn, an})
	return s.normalize()
}

// SuggestTags returns position-aware tag candidates for a new node under
// the anchor handle.  Use anchor == complete.NewRoot before Root is set.
func (s *Session) SuggestTags(anchor int, axis twig.Axis, prefix string, k int) ([]complete.Candidate, error) {
	if anchor == complete.NewRoot || s.query == nil {
		// Root suggestions need no query context.
		return s.backend.CompleteTags(context.Background(), nil, complete.NewRoot, axis, prefix, k)
	}
	an, err := s.node(anchor)
	if err != nil {
		return nil, err
	}
	if err := s.normalize(); err != nil {
		return nil, err
	}
	return s.backend.CompleteTags(context.Background(), s.query, an.ID, axis, prefix, k)
}

// SuggestValues returns position-aware value candidates for the node with
// the given handle.
func (s *Session) SuggestValues(handle int, prefix string, k int) ([]complete.Candidate, error) {
	n, err := s.node(handle)
	if err != nil {
		return nil, err
	}
	if err := s.normalize(); err != nil {
		return nil, err
	}
	return s.backend.CompleteValues(context.Background(), s.query, n.ID, prefix, k)
}

// Query returns the current twig, normalized, or an error when the session
// is empty or inconsistent.
func (s *Session) Query() (*twig.Query, error) {
	if s.query == nil {
		return nil, fmt.Errorf("session: no query built yet")
	}
	if err := s.normalize(); err != nil {
		return nil, err
	}
	return s.query, nil
}

// XPath renders the current twig in the surface syntax.
func (s *Session) XPath() (string, error) {
	q, err := s.Query()
	if err != nil {
		return "", err
	}
	return q.String(), nil
}

// XQuery renders the current twig as the equivalent XQuery expression.
func (s *Session) XQuery() (string, error) {
	q, err := s.Query()
	if err != nil {
		return "", err
	}
	return q.ToXQuery(), nil
}

// Run evaluates the current twig over a single-engine session.  Sessions
// over other backends (a sharded corpus) must use RunHits, whose answers
// carry shard attribution.
func (s *Session) Run(opts SearchOptions) (*SearchResult, error) {
	e, ok := s.backend.(*Engine)
	if !ok {
		return nil, fmt.Errorf("core: Run needs a single-engine session (backend kind %q); use RunHits", s.backend.Info().Kind)
	}
	q, err := s.Query()
	if err != nil {
		return nil, err
	}
	return e.Search(q, opts)
}

// RunHits evaluates the current twig over any backend, returning rendered
// hits (corpus sessions merge globally ranked answers across shards).
func (s *Session) RunHits(opts SearchOptions) (*HitResult, error) {
	return s.RunHitsContext(context.Background(), opts)
}

// RunHitsContext is RunHits under a caller-supplied context, so interactive
// frontends can cancel a running query or carry a trace (see internal/obs)
// through the evaluation.
func (s *Session) RunHitsContext(ctx context.Context, opts SearchOptions) (*HitResult, error) {
	q, err := s.Query()
	if err != nil {
		return nil, err
	}
	return s.backend.SearchHits(ctx, q, opts)
}

func (s *Session) register(n *twig.Node) int {
	h := s.nextH
	s.nextH++
	s.handles[h] = n
	return h
}

func (s *Session) node(handle int) (*twig.Node, error) {
	n, ok := s.handles[handle]
	if !ok {
		return nil, fmt.Errorf("session: unknown node handle %d", handle)
	}
	return n, nil
}

func (s *Session) normalize() error {
	if s.query == nil {
		return fmt.Errorf("session: no query built yet")
	}
	s.query.Order = nil
	if err := s.query.Normalize(); err != nil {
		return err
	}
	for _, pr := range s.orders {
		s.query.Order = append(s.query.Order, twig.OrderConstraint{Before: pr[0].ID, After: pr[1].ID})
	}
	return nil
}
