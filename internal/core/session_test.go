package core

import (
	"strings"
	"testing"

	"lotusx/internal/complete"
	"lotusx/internal/twig"
)

func TestSessionBuildsQueryInteractively(t *testing.T) {
	e := mustEngine(t)
	s := e.NewSession()

	// Step 1: root suggestions before anything exists.
	cands, err := s.SuggestTags(complete.NewRoot, twig.Descendant, "art", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].Text != "article" {
		t.Fatalf("root candidates = %+v", cands)
	}

	root, err := s.Root("article", twig.Descendant)
	if err != nil {
		t.Fatal(err)
	}

	// Step 2: grow a child; position-aware candidates for prefix "a".
	cands, err = s.SuggestTags(root, twig.Child, "a", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].Text != "author" {
		t.Fatalf("child candidates = %+v", cands)
	}
	author, err := s.AddNode(root, twig.Child, "author")
	if err != nil {
		t.Fatal(err)
	}

	// Step 3: value completion on the author node.
	vals, err := s.SuggestValues(author, "jia", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0].Text != "jiaheng lu" {
		t.Fatalf("value candidates = %+v", vals)
	}
	if err := s.SetPredicate(author, twig.Eq, "jiaheng lu"); err != nil {
		t.Fatal(err)
	}

	// Step 4: add the output node.
	title, err := s.AddNode(root, twig.Child, "title")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetOutput(title); err != nil {
		t.Fatal(err)
	}

	// The session renders the query the user never had to write.
	xp, err := s.XPath()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xp, "article") || !strings.Contains(xp, "jiaheng lu") {
		t.Errorf("xpath = %q", xp)
	}
	xq, err := s.XQuery()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xq, "for $v0") {
		t.Errorf("xquery = %q", xq)
	}

	// Step 5: run.
	res, err := s.Run(SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %d, want 2", len(res.Answers))
	}
	d := e.Document()
	for _, a := range res.Answers {
		if d.TagName(a.Node) != "title" {
			t.Errorf("answer tag = %q", d.TagName(a.Node))
		}
	}
}

func TestSessionErrors(t *testing.T) {
	e := mustEngine(t)
	s := e.NewSession()

	if _, err := s.Query(); err == nil {
		t.Error("empty session should have no query")
	}
	if _, err := s.Run(SearchOptions{}); err == nil {
		t.Error("empty session should not run")
	}
	if _, err := s.AddNode(42, twig.Child, "x"); err == nil {
		t.Error("unknown handle should fail")
	}
	root, _ := s.Root("article", twig.Descendant)
	if _, err := s.Root("again", twig.Descendant); err == nil {
		t.Error("second root should fail")
	}
	if err := s.SetPredicate(999, twig.Eq, "x"); err == nil {
		t.Error("unknown handle should fail")
	}
	if err := s.AddOrder(root, root); err == nil {
		t.Error("self order should fail")
	}
}

func TestSessionSetTagAfterSuggestion(t *testing.T) {
	e := mustEngine(t)
	s := e.NewSession()
	root, _ := s.Root("article", twig.Descendant)
	n, _ := s.AddNode(root, twig.Child, "placeholder")
	if err := s.SetTag(n, "year"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(SearchOptions{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 3 {
		t.Fatalf("answers = %d, want 3 articles with year", len(res.Answers))
	}
}

func TestSessionOrderConstraintSurvivesGrowth(t *testing.T) {
	e, err := FromReader("seq", strings.NewReader(
		`<r><s><a/><b/><c/></s><s><b/><a/><c/></s></r>`))
	if err != nil {
		t.Fatal(err)
	}
	s := e.NewSession()
	root, _ := s.Root("s", twig.Descendant)
	a, _ := s.AddNode(root, twig.Child, "a")
	b, _ := s.AddNode(root, twig.Child, "b")
	if err := s.AddOrder(a, b); err != nil {
		t.Fatal(err)
	}
	// Growing the twig after the constraint must not corrupt it.
	if _, err := s.AddNode(root, twig.Child, "c"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Fatalf("ordered answers = %d, want 1", len(res.Answers))
	}
}

func TestSessionValueSuggestionsArePositionAware(t *testing.T) {
	e, err := FromReader("shop", strings.NewReader(`<shop>
	  <item><name>anvil</name></item>
	  <person><name>alice</name></person>
	</shop>`))
	if err != nil {
		t.Fatal(err)
	}
	s := e.NewSession()
	root, _ := s.Root("person", twig.Descendant)
	name, _ := s.AddNode(root, twig.Child, "name")
	vals, err := s.SuggestValues(name, "a", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0].Text != "alice" {
		t.Fatalf("person/name values = %+v", vals)
	}
}

func TestSessionRemoveNode(t *testing.T) {
	e := mustEngine(t)
	s := e.NewSession()
	root, _ := s.Root("article", twig.Descendant)
	author, _ := s.AddNode(root, twig.Child, "author")
	year, _ := s.AddNode(root, twig.Child, "year")

	if err := s.RemoveNode(year); err != nil {
		t.Fatal(err)
	}
	q, err := s.Query()
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != 2 {
		t.Fatalf("after removal Len = %d, want 2", q.Len())
	}
	// The removed handle is invalid now.
	if err := s.SetPredicate(year, twig.Eq, "x"); err == nil {
		t.Fatal("stale handle should fail")
	}
	// Other handles still work.
	if err := s.SetPredicate(author, twig.Eq, "jiaheng lu"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %d, want 2", len(res.Answers))
	}
}

func TestSessionRemoveSubtreeDropsOrderAndHandles(t *testing.T) {
	e, err := FromReader("seq", strings.NewReader(`<r><s><a/><b/></s></r>`))
	if err != nil {
		t.Fatal(err)
	}
	s := e.NewSession()
	root, _ := s.Root("s", twig.Descendant)
	a, _ := s.AddNode(root, twig.Child, "a")
	b, _ := s.AddNode(root, twig.Child, "b")
	sub, _ := s.AddNode(b, twig.Child, "x")
	if err := s.AddOrder(a, b); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveNode(b); err != nil {
		t.Fatal(err)
	}
	q, err := s.Query()
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != 2 || len(q.Order) != 0 {
		t.Fatalf("after subtree removal: len=%d order=%d", q.Len(), len(q.Order))
	}
	if _, err := s.AddNode(sub, twig.Child, "y"); err == nil {
		t.Fatal("handle inside removed subtree should be invalid")
	}
}

func TestSessionRemoveRootRejected(t *testing.T) {
	e := mustEngine(t)
	s := e.NewSession()
	root, _ := s.Root("article", twig.Descendant)
	if err := s.RemoveNode(root); err == nil {
		t.Fatal("removing the root should fail")
	}
	if err := s.RemoveNode(12345); err == nil {
		t.Fatal("unknown handle should fail")
	}
}

func TestSessionRemoveOutputNodeResetsOutput(t *testing.T) {
	e := mustEngine(t)
	s := e.NewSession()
	root, _ := s.Root("article", twig.Descendant)
	title, _ := s.AddNode(root, twig.Child, "title")
	if err := s.SetOutput(title); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveNode(title); err != nil {
		t.Fatal(err)
	}
	q, err := s.Query()
	if err != nil {
		t.Fatal(err)
	}
	if q.OutputNode() != q.Root {
		t.Fatal("output should fall back to the root")
	}
}

func TestSessionSetAxis(t *testing.T) {
	e, err := FromReader("nest", strings.NewReader(`<r><a><m><b>x</b></m></a></r>`))
	if err != nil {
		t.Fatal(err)
	}
	s := e.NewSession()
	root, _ := s.Root("a", twig.Descendant)
	b, _ := s.AddNode(root, twig.Child, "b")
	res, err := s.Run(SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 {
		t.Fatal("child axis should not match the nested b")
	}
	if err := s.SetAxis(b, twig.Descendant); err != nil {
		t.Fatal(err)
	}
	res, err = s.Run(SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Fatalf("descendant axis answers = %d, want 1", len(res.Answers))
	}
}
