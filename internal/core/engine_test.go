package core

import (
	"bytes"
	"strings"
	"testing"

	"lotusx/internal/doc"
	"lotusx/internal/join"
	"lotusx/internal/twig"
)

const bibXML = `<dblp>
  <article key="a1">
    <author>Jiaheng Lu</author>
    <title>Holistic Twig Joins</title>
    <year>2005</year>
  </article>
  <article key="a2">
    <author>Chunbin Lin</author>
    <author>Jiaheng Lu</author>
    <title>LotusX Position-Aware Search</title>
    <year>2012</year>
  </article>
  <article key="a3">
    <author>Bogdan Cautis</author>
    <title>Query Rewriting Methods</title>
    <year>2012</year>
  </article>
  <book key="b1">
    <author>Tok Wang Ling</author>
    <title>XML Databases</title>
  </book>
</dblp>`

func mustEngine(t testing.TB) *Engine {
	t.Helper()
	e, err := FromReader("bib", strings.NewReader(bibXML))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineStats(t *testing.T) {
	e := mustEngine(t)
	st := e.Stats()
	if st.Document != "bib" || st.Nodes == 0 || st.Tags == 0 || st.GuidePaths == 0 || st.Valued == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSearchString(t *testing.T) {
	e := mustEngine(t)
	res, err := e.SearchString(`//article[author = "Jiaheng Lu"]/title`, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 || res.Exact != 2 {
		t.Fatalf("answers = %d exact = %d, want 2/2", len(res.Answers), res.Exact)
	}
	d := e.Document()
	for _, a := range res.Answers {
		if d.TagName(a.Node) != "title" {
			t.Errorf("answer tagged %q, want title", d.TagName(a.Node))
		}
		if a.Rewrite != nil {
			t.Error("exact answer should carry no rewrite")
		}
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
}

func TestSearchInvalidQuery(t *testing.T) {
	e := mustEngine(t)
	if _, err := e.SearchString("not a query", SearchOptions{}); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestSearchAllAlgorithmsAgree(t *testing.T) {
	e := mustEngine(t)
	var ref []string
	for _, alg := range join.Algorithms {
		res, err := e.SearchString(`//article[year = "2012"]`, SearchOptions{Algorithm: alg, K: 100})
		if err != nil {
			t.Fatal(err)
		}
		var nodes []string
		for _, a := range res.Answers {
			nodes = append(nodes, e.Snippet(a.Node, 30))
		}
		if ref == nil {
			ref = nodes
			continue
		}
		if strings.Join(nodes, "|") != strings.Join(ref, "|") {
			t.Fatalf("%s ranking disagrees", alg)
		}
	}
}

func TestSearchDeduplicatesOutputNodes(t *testing.T) {
	e := mustEngine(t)
	// //article[author] has 4 matches (a2 has two authors) but 3 distinct
	// articles.
	res, err := e.SearchString(`//article[author]`, SearchOptions{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 3 {
		t.Fatalf("answers = %d, want 3 distinct articles", len(res.Answers))
	}
}

func TestSearchKLimit(t *testing.T) {
	e := mustEngine(t)
	res, err := e.SearchString(`//author`, SearchOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %d, want 2", len(res.Answers))
	}
}

func TestSearchWithRewriteRecoversTypo(t *testing.T) {
	e := mustEngine(t)
	res, err := e.SearchString(`//article/autor`, SearchOptions{Rewrite: true, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact != 0 {
		t.Fatalf("exact = %d, want 0", res.Exact)
	}
	if len(res.Answers) == 0 {
		t.Fatal("rewriting recovered nothing")
	}
	first := res.Answers[0]
	if first.Rewrite == nil {
		t.Fatal("recovered answer should carry its rewrite")
	}
	if e.Document().TagName(first.Node) != "author" {
		t.Errorf("recovered node tagged %q", e.Document().TagName(first.Node))
	}
	if res.RewritesTried == 0 {
		t.Error("RewritesTried not counted")
	}
}

func TestSearchRewriteDisabledStaysEmpty(t *testing.T) {
	e := mustEngine(t)
	res, err := e.SearchString(`//article/autor`, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 {
		t.Fatal("rewriting should be off by default")
	}
}

func TestSearchExactAnswersPrecedeRewrites(t *testing.T) {
	e := mustEngine(t)
	// year = 2005 has 1 exact; with rewriting and K=3, relaxed answers
	// (contains/drop) follow the exact one.
	res, err := e.SearchString(`//article[year = "2005"]`, SearchOptions{Rewrite: true, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact != 1 {
		t.Fatalf("exact = %d, want 1", res.Exact)
	}
	if len(res.Answers) <= 1 {
		t.Fatalf("expected relaxed answers after the exact one, got %d", len(res.Answers))
	}
	if res.Answers[0].Rewrite != nil {
		t.Fatal("first answer should be exact")
	}
	for _, a := range res.Answers[1:] {
		if a.Rewrite == nil {
			t.Fatal("post-exact answers should come from rewrites")
		}
	}
}

func TestSaveOpenRoundTrip(t *testing.T) {
	e := mustEngine(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := e.SearchString(`//article/title`, SearchOptions{K: 100})
	r2, _ := e2.SearchString(`//article/title`, SearchOptions{K: 100})
	if len(r1.Answers) != len(r2.Answers) {
		t.Fatal("reloaded engine answers differ")
	}
}

func TestOpenGarbage(t *testing.T) {
	if _, err := Open(strings.NewReader("garbage")); err == nil {
		t.Fatal("expected error")
	}
}

func TestFromFileMissing(t *testing.T) {
	if _, err := FromFile("/nonexistent/file.xml"); err == nil {
		t.Fatal("expected error")
	}
}

func TestSnippetTruncation(t *testing.T) {
	e := mustEngine(t)
	full := e.Snippet(e.Document().Root(), 0)
	if !strings.Contains(full, "<dblp>") {
		t.Fatalf("snippet = %q", full)
	}
	short := e.Snippet(e.Document().Root(), 10)
	if len(short) > 14 { // 10 + ellipsis rune
		t.Fatalf("short snippet = %q", short)
	}
}

func TestValidate(t *testing.T) {
	e := mustEngine(t)
	if err := e.Validate(nil); err == nil {
		t.Fatal("nil query should fail")
	}
	q := twig.NewQuery("article")
	if err := e.Validate(q); err != nil {
		t.Fatal(err)
	}
}

func TestSaveFullOpenRoundTrip(t *testing.T) {
	e := mustEngine(t)
	var buf bytes.Buffer
	if err := e.SaveFull(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(&buf) // Open auto-detects the full format
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := e.SearchString(`//article[title contains "twig"]`, SearchOptions{K: 10})
	r2, _ := e2.SearchString(`//article[title contains "twig"]`, SearchOptions{K: 10})
	if len(r1.Answers) != len(r2.Answers) || len(r1.Answers) == 0 {
		t.Fatalf("full-format reload differs: %d vs %d", len(r1.Answers), len(r2.Answers))
	}
	// Completion works over the reloaded engine too.
	s := e2.NewSession()
	root, _ := s.Root("article", twig.Descendant)
	cands, err := s.SuggestTags(root, twig.Child, "a", 5)
	if err != nil || len(cands) != 1 || cands[0].Text != "author" {
		t.Fatalf("completion after reload = %v, %v", cands, err)
	}
}

func TestSearchPagination(t *testing.T) {
	e := mustEngine(t)
	all, err := e.SearchString(`//author`, SearchOptions{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Answers) != 5 {
		t.Fatalf("total answers = %d, want 5", len(all.Answers))
	}
	page1, err := e.SearchString(`//author`, SearchOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	page2, err := e.SearchString(`//author`, SearchOptions{K: 2, Offset: 2})
	if err != nil {
		t.Fatal(err)
	}
	page3, err := e.SearchString(`//author`, SearchOptions{K: 2, Offset: 4})
	if err != nil {
		t.Fatal(err)
	}
	var got []doc.NodeID
	for _, p := range [][]Answer{page1.Answers, page2.Answers, page3.Answers} {
		for _, a := range p {
			got = append(got, a.Node)
		}
	}
	if len(got) != 5 {
		t.Fatalf("paged answers = %d, want 5", len(got))
	}
	for i, a := range all.Answers {
		if got[i] != a.Node {
			t.Fatalf("page order diverges at %d", i)
		}
	}
	// Offset past the end yields an empty page, no error.
	empty, err := e.SearchString(`//author`, SearchOptions{K: 2, Offset: 50})
	if err != nil || len(empty.Answers) != 0 {
		t.Fatalf("far page = %d answers, %v", len(empty.Answers), err)
	}
	// Negative offsets are treated as zero.
	neg, err := e.SearchString(`//author`, SearchOptions{K: 2, Offset: -3})
	if err != nil || len(neg.Answers) != 2 {
		t.Fatalf("negative offset = %d answers, %v", len(neg.Answers), err)
	}
}

func TestSearchPaginationAcrossRewriteBoundary(t *testing.T) {
	e := mustEngine(t)
	// 1 exact answer for year=2005; page 2 with rewriting reaches into the
	// relaxed answers and Exact reflects that none on this page are exact.
	page2, err := e.SearchString(`//article[year = "2005"]`,
		SearchOptions{K: 2, Offset: 1, Rewrite: true})
	if err != nil {
		t.Fatal(err)
	}
	if page2.Exact != 0 {
		t.Fatalf("page-2 exact = %d, want 0", page2.Exact)
	}
	if len(page2.Answers) == 0 || page2.Answers[0].Rewrite == nil {
		t.Fatalf("page-2 answers = %+v", page2.Answers)
	}
}
