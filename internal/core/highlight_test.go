package core

import (
	"testing"

	"lotusx/internal/join"
	"lotusx/internal/twig"
)

func firstMatch(t *testing.T, e *Engine, qs string) (*twig.Query, join.Match) {
	t.Helper()
	q := twig.MustParse(qs)
	res, err := join.Run(e.Index(), q, join.TwigStack, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatalf("no matches for %q", qs)
	}
	return q, res.Matches[0]
}

func TestHighlightsContains(t *testing.T) {
	e := mustEngine(t)
	q, m := firstMatch(t, e, `//article[title contains "twig joins"]`)
	hs := e.Highlights(q, m)
	if len(hs) != 1 {
		t.Fatalf("highlights = %+v", hs)
	}
	h := hs[0]
	if h.Tag != "title" || h.Value != "Holistic Twig Joins" {
		t.Fatalf("highlight = %+v", h)
	}
	if len(h.Spans) != 2 {
		t.Fatalf("spans = %+v", h.Spans)
	}
	if got := Underline(h.Value, h.Spans); got != "Holistic >>Twig<< >>Joins<<" {
		t.Fatalf("underlined = %q", got)
	}
}

func TestHighlightsEq(t *testing.T) {
	e := mustEngine(t)
	q, m := firstMatch(t, e, `//article[year = "2005"]`)
	hs := e.Highlights(q, m)
	if len(hs) != 1 || len(hs[0].Spans) != 1 {
		t.Fatalf("highlights = %+v", hs)
	}
	if got := Underline(hs[0].Value, hs[0].Spans); got != ">>2005<<" {
		t.Fatalf("underlined = %q", got)
	}
}

func TestHighlightsMultiplePredicates(t *testing.T) {
	e := mustEngine(t)
	q, m := firstMatch(t, e, `//article[author contains "lu"][title contains "twig"]`)
	hs := e.Highlights(q, m)
	if len(hs) != 2 {
		t.Fatalf("highlights = %+v", hs)
	}
	tags := map[string]bool{}
	for _, h := range hs {
		tags[h.Tag] = true
		if len(h.Spans) == 0 {
			t.Errorf("predicate on %s matched without spans", h.Tag)
		}
	}
	if !tags["author"] || !tags["title"] {
		t.Fatalf("tags = %v", tags)
	}
}

func TestHighlightsNoPredicates(t *testing.T) {
	e := mustEngine(t)
	q, m := firstMatch(t, e, `//article/title`)
	if hs := e.Highlights(q, m); hs != nil {
		t.Fatalf("predicate-free query highlighted %+v", hs)
	}
}

func TestUnderlineEdgeCases(t *testing.T) {
	if got := Underline("plain", nil); got != "plain" {
		t.Errorf("no spans = %q", got)
	}
	// Out-of-range spans are skipped rather than panicking.
	if got := Underline("ab", []Span{{Start: 1, End: 99}}); got != "ab" {
		t.Errorf("bad span = %q", got)
	}
	if got := Underline("a b a", []Span{{0, 1}, {4, 5}}); got != ">>a<< b >>a<<" {
		t.Errorf("two spans = %q", got)
	}
}
