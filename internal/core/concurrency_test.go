package core

import (
	"fmt"
	"sync"
	"testing"

	"lotusx/internal/join"
	"lotusx/internal/twig"
)

// TestConcurrentSearchesAndCompletions exercises the documented guarantee
// that a built Engine is safe for concurrent readers: searches (all
// algorithms), completions, value suggestions and rewriting fallbacks run
// simultaneously from many goroutines.  Run with -race to make this test
// meaningful.
func TestConcurrentSearchesAndCompletions(t *testing.T) {
	e := mustEngine(t)
	queries := []string{
		`//article/title`,
		`//article[author = "Jiaheng Lu"]`,
		`//book//title`,
		`//article[author][year]/title`,
		`//article/autor`, // exercises the rewriter
	}
	const workers = 8
	const rounds = 20

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				qs := queries[(w+i)%len(queries)]
				alg := join.Algorithms[(w+i)%len(join.Algorithms)]
				if _, err := e.SearchString(qs, SearchOptions{Algorithm: alg, Rewrite: true, K: 5}); err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				q := twig.MustParse("//article")
				e.Completer().SuggestTags(q, 0, twig.Child, "a", 5)
				e.Completer().SuggestValues(twig.MustParse("//article/author"), 1, "j", 5)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentSessionsShareOneEngine: many sessions (each single-threaded)
// over one engine do not interfere.
func TestConcurrentSessionsShareOneEngine(t *testing.T) {
	e := mustEngine(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.NewSession()
			root, err := s.Root("article", twig.Descendant)
			if err != nil {
				errs <- err
				return
			}
			if _, err := s.SuggestTags(root, twig.Child, "a", 5); err != nil {
				errs <- err
				return
			}
			if _, err := s.AddNode(root, twig.Child, "author"); err != nil {
				errs <- err
				return
			}
			res, err := s.Run(SearchOptions{K: 10})
			if err != nil {
				errs <- err
				return
			}
			if len(res.Answers) != 3 {
				errs <- fmt.Errorf("session got %d answers, want 3", len(res.Answers))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
