// Package core assembles the LotusX engine: document ingestion, index and
// DataGuide construction, position-aware completion, twig evaluation with
// ranking, and rewriting fallback — the full server-side behaviour behind
// the paper's GUI.
package core

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"lotusx/internal/complete"
	"lotusx/internal/dataguide"
	"lotusx/internal/doc"
	"lotusx/internal/index"
	"lotusx/internal/join"
	"lotusx/internal/obs"
	"lotusx/internal/rank"
	"lotusx/internal/rewrite"
	"lotusx/internal/twig"
)

// Engine is a fully built LotusX instance over one document.  It is
// immutable after construction and safe for concurrent use.
type Engine struct {
	ix        *index.Index
	guide     *dataguide.Guide
	completer *complete.Engine
	ranker    *rank.Ranker
	rewriter  *rewrite.Engine
}

// BuildOptions tunes engine construction.
type BuildOptions struct {
	// Compress opts the index into the DAG-compressed substrate, falling
	// back to raw when the document's dedup ratio is poor (see
	// index.BuildWith).
	Compress bool
}

// FromDocument builds an Engine over an already-parsed document.
func FromDocument(d *doc.Document) *Engine {
	return fromIndex(index.Build(d))
}

// FromDocumentOpts builds an Engine over an already-parsed document with
// build options.
func FromDocumentOpts(d *doc.Document, opts BuildOptions) *Engine {
	return fromIndex(index.BuildWith(d, index.BuildOptions{Compress: opts.Compress}))
}

// Compressed reports whether the engine's index runs on the DAG-compressed
// substrate.
func (e *Engine) Compressed() bool { return e.ix.Compressed() != nil }

// CompressionStats reports the index substrate's size accounting: resident
// bytes, the raw-equivalent estimate, and (when compressed) shape counts.
func (e *Engine) CompressionStats() index.CompressionStats { return e.ix.CompressionStats() }

// FromReader parses XML from r and builds an Engine.
func FromReader(name string, r io.Reader) (*Engine, error) {
	d, err := doc.FromReader(name, r)
	if err != nil {
		return nil, err
	}
	return FromDocument(d), nil
}

// FromFile parses the XML file at path and builds an Engine.
func FromFile(path string) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return FromReader(path, f)
}

// Save persists the engine compactly (its document; derived structures
// rebuild on Open).
func (e *Engine) Save(w io.Writer) error { return e.ix.Save(w) }

// SaveFull persists the engine with its token postings and a checksum
// (larger file, faster open; see index.SaveFull).
func (e *Engine) SaveFull(w io.Writer) error { return e.ix.SaveFull(w) }

// Open loads an engine written by Save or SaveFull, detecting the format
// from the file magic.
func Open(r io.Reader) (*Engine, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if string(magic) == "LTXI" {
		ix, err := index.LoadFull(br)
		if err != nil {
			return nil, err
		}
		return fromIndex(ix), nil
	}
	d, err := doc.Load(br)
	if err != nil {
		return nil, err
	}
	return FromDocument(d), nil
}

// fromIndex assembles an engine around an already-built index.
func fromIndex(ix *index.Index) *Engine {
	guide := dataguide.Build(ix.Document())
	guide.Warm()
	return &Engine{
		ix:        ix,
		guide:     guide,
		completer: complete.New(ix, guide),
		ranker:    rank.New(ix),
		rewriter:  rewrite.New(ix, guide),
	}
}

// Document returns the underlying document.
func (e *Engine) Document() *doc.Document { return e.ix.Document() }

// Index returns the underlying index.
func (e *Engine) Index() *index.Index { return e.ix }

// Guide returns the structural summary.
func (e *Engine) Guide() *dataguide.Guide { return e.guide }

// Completer returns the auto-completion engine.
func (e *Engine) Completer() *complete.Engine { return e.completer }

// Rewriter returns the rewrite engine.
func (e *Engine) Rewriter() *rewrite.Engine { return e.rewriter }

// Ranker returns the answer ranker.
func (e *Engine) Ranker() *rank.Ranker { return e.ranker }

// Stats summarizes the engine for dashboards and the demo UI.
type Stats struct {
	Document   string
	Nodes      int
	Tags       int
	GuidePaths int
	Valued     int
}

// Stats returns engine-level statistics.
func (e *Engine) Stats() Stats {
	d := e.ix.Document()
	return Stats{
		Document:   d.Name(),
		Nodes:      d.Len(),
		Tags:       d.Tags().Len(),
		GuidePaths: e.guide.Size(),
		Valued:     e.ix.ValuedNodes(),
	}
}

// SearchOptions tunes Search.
type SearchOptions struct {
	// Algorithm selects the twig join; empty means TwigStack.
	Algorithm join.Algorithm
	// K is the number of answers wanted; 0 means 10.
	K int
	// Offset skips that many leading answers — result paging.  Exactness
	// accounting and rewrite triggering consider the full prefix, so page N
	// is always consistent with page N-1.
	Offset int
	// Rewrite enables relaxation when the exact query yields fewer than K
	// answers.
	Rewrite bool
	// MaxPenalty bounds the rewrite search; 0 means 2.5.
	MaxPenalty float64
	// MaxRewrites bounds how many rewrites are evaluated; 0 means 32.
	MaxRewrites int
	// MaxMatches caps match enumeration per query; 0 means 10000.
	MaxMatches int
	// Minimize removes redundant query branches before evaluation (tree
	// pattern minimization; preserves the answer set).
	Minimize bool
	// SnippetMax caps the rendered snippet of each Hit returned by
	// Backend.SearchHits, in bytes; 0 means 400.  Search/SearchContext
	// ignore it (they return raw nodes).
	SnippetMax int
}

// Canonical resolves every default and clamps nonsense values, returning
// the fully-normalized options.  It is THE canonicalization: Engine and
// corpus search paths both apply it once on entry, and the cache key
// builder (internal/cache) derives keys from its output — so two requests
// that mean the same thing always canonicalize, evaluate and cache
// identically.
func (o SearchOptions) Canonical() SearchOptions {
	if o.Algorithm == "" {
		o.Algorithm = join.TwigStack
	}
	if o.K == 0 {
		o.K = 10
	}
	if o.Offset < 0 {
		o.Offset = 0
	}
	if o.MaxPenalty == 0 {
		o.MaxPenalty = 2.5
	}
	if o.MaxRewrites == 0 {
		o.MaxRewrites = 32
	}
	if o.MaxMatches == 0 {
		o.MaxMatches = 10000
	}
	if o.SnippetMax == 0 {
		o.SnippetMax = 400
	}
	return o
}

// Answer is one ranked query answer.
type Answer struct {
	// Node is the match of the query's output node.
	Node doc.NodeID
	// Score is the ranking score (see package rank); answers from rewrites
	// rank below all exact answers regardless of score.
	Score float64
	// Scored carries the component breakdown.
	Scored rank.Scored
	// Rewrite is non-nil when this answer came from a relaxed query.
	Rewrite *rewrite.Rewrite
}

// SearchResult is the outcome of Search.
type SearchResult struct {
	Answers []Answer
	// Exact counts the leading answers that came from the original query.
	Exact int
	// Total counts the distinct answers materialized before the page was
	// cut.  Search stops materializing at Offset+K, so Total == Offset+K
	// means further answers may exist beyond this page.
	Total int
	// Stats are the join statistics of the original query's evaluation.
	Stats join.Stats
	// RewritesTried counts relaxed queries evaluated.
	RewritesTried int
	// Algorithm is the join algorithm that actually ran ("auto" resolved).
	Algorithm join.Algorithm
	// Elapsed is the total wall-clock evaluation time.
	Elapsed time.Duration
}

// Search evaluates q: exact matching, ranking, and — if enabled and the
// result is thin — rewriting in penalty order until K answers accumulate.
func (e *Engine) Search(q *twig.Query, opts SearchOptions) (*SearchResult, error) {
	return e.SearchContext(context.Background(), q, opts)
}

// SearchContext is Search under a context: the twig join polls ctx
// cooperatively mid-evaluation (see join.Options.Ctx) and the rewrite loop
// checks it between relaxations, so a cancelled or timed-out request stops
// burning CPU and returns the context's error.
func (e *Engine) SearchContext(ctx context.Context, q *twig.Query, opts SearchOptions) (*SearchResult, error) {
	opts = opts.Canonical()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	if q.Len() == 0 {
		if err := q.Normalize(); err != nil {
			return nil, err
		}
	}
	if opts.Minimize {
		q = q.Minimize()
	}

	// Paging: materialize the first Offset+K answers, then cut the page.
	want := opts.K + opts.Offset

	res, err := join.Run(e.ix, q, opts.Algorithm, join.Options{MaxMatches: opts.MaxMatches, Ctx: ctx})
	if err != nil {
		return nil, err
	}
	out := &SearchResult{Stats: res.Stats, Algorithm: res.Algorithm}
	seen := make(map[doc.NodeID]struct{})
	outID := q.OutputNode().ID
	for _, s := range e.ranker.RankContext(ctx, q, res.Matches, 0) {
		node := s.Match[outID]
		if _, dup := seen[node]; dup {
			continue
		}
		seen[node] = struct{}{}
		out.Answers = append(out.Answers, Answer{Node: node, Score: s.Score, Scored: s})
		if len(out.Answers) >= want {
			break
		}
	}
	out.Exact = len(out.Answers)

	if opts.Rewrite && len(out.Answers) < want {
		// The whole relaxation phase — enumeration plus every rewrite's
		// join and ranking — nests under one "rewrite" span.
		rsp, rctx := obs.Start(ctx, "rewrite")
		err := e.searchRewrites(rctx, q, opts, out, seen, want)
		rsp.SetInt("tried", out.RewritesTried)
		rsp.SetErr(err)
		rsp.End()
		if err != nil {
			return nil, err
		}
	}
	out.Total = len(out.Answers)
	if opts.Offset > 0 {
		if opts.Offset >= len(out.Answers) {
			out.Answers = nil
		} else {
			out.Answers = out.Answers[opts.Offset:]
		}
		out.Exact -= opts.Offset
		if out.Exact < 0 {
			out.Exact = 0
		}
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// searchRewrites evaluates relaxations in penalty order, appending answers
// until want is reached.  It stops with the context's error once ctx dies.
func (e *Engine) searchRewrites(ctx context.Context, q *twig.Query, opts SearchOptions, out *SearchResult, seen map[doc.NodeID]struct{}, want int) error {
	for _, rw := range e.rewriter.EnumerateContext(ctx, q, opts.MaxPenalty, opts.MaxRewrites) {
		if len(out.Answers) >= want {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		res, err := join.Run(e.ix, rw.Query, opts.Algorithm, join.Options{MaxMatches: opts.MaxMatches, Ctx: ctx})
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			continue // a rewrite that cannot run is simply skipped
		}
		out.RewritesTried++
		rwCopy := rw
		rwOutID := rw.Query.OutputNode().ID
		for _, s := range e.ranker.Rank(rw.Query, res.Matches, 0) {
			node := s.Match[rwOutID]
			if _, dup := seen[node]; dup {
				continue
			}
			seen[node] = struct{}{}
			out.Answers = append(out.Answers, Answer{
				Node: node, Score: s.Score, Scored: s, Rewrite: &rwCopy,
			})
			if len(out.Answers) >= want {
				return nil
			}
		}
	}
	return nil
}

// SearchString parses the XPath-subset query and searches.
func (e *Engine) SearchString(query string, opts SearchOptions) (*SearchResult, error) {
	return e.SearchStringContext(context.Background(), query, opts)
}

// SearchStringContext parses the XPath-subset query and searches under a
// context (see SearchContext).
func (e *Engine) SearchStringContext(ctx context.Context, query string, opts SearchOptions) (*SearchResult, error) {
	q, err := twig.Parse(query)
	if err != nil {
		return nil, err
	}
	return e.SearchContext(ctx, q, opts)
}

// Snippet renders the answer node's subtree as XML, truncated to max bytes
// (0 means no limit) — what the demo UI shows per answer.
func (e *Engine) Snippet(n doc.NodeID, max int) string {
	s := e.ix.Document().XMLString(n)
	if max > 0 && len(s) > max {
		s = s[:max] + "…"
	}
	return s
}

// Validate checks that a programmatically built query can run against this
// engine (normalized, known structure is not required — unknown tags simply
// match nothing).
func (e *Engine) Validate(q *twig.Query) error {
	if q == nil || q.Root == nil {
		return fmt.Errorf("core: nil query")
	}
	return q.Normalize()
}
