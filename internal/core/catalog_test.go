package core

import (
	"strings"
	"sync"
	"testing"
)

func TestCatalogBasics(t *testing.T) {
	c := NewCatalog()
	if c.Len() != 0 {
		t.Fatal("new catalog not empty")
	}
	if _, err := c.Get(""); err == nil {
		t.Fatal("empty catalog should miss")
	}

	e1 := mustEngine(t)
	e2, err := FromReader("other", strings.NewReader("<a><b>x</b></a>"))
	if err != nil {
		t.Fatal(err)
	}
	c.Add("bib", e1)
	c.Add("tiny", e2)

	got, err := c.Get("tiny")
	if err != nil || got != e2 {
		t.Fatalf("Get(tiny) = %v, %v", got, err)
	}
	// The first added engine is the default.
	def, err := c.Get("")
	if err != nil || def != e1 {
		t.Fatalf("default = %v, %v", def, err)
	}
	if _, err := c.Get("missing"); err == nil {
		t.Fatal("unknown name should error")
	}

	names := c.Names()
	if len(names) != 2 || names[0] != "bib" || names[1] != "tiny" {
		t.Fatalf("names = %v", names)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCatalogReplace(t *testing.T) {
	c := NewCatalog()
	e1 := mustEngine(t)
	e2, _ := FromReader("v2", strings.NewReader("<a/>"))
	c.Add("d", e1)
	c.Add("d", e2)
	got, _ := c.Get("d")
	if got != e2 {
		t.Fatal("Add did not replace")
	}
	if c.Len() != 1 {
		t.Fatal("replace changed count")
	}
}

func TestCatalogConcurrentAccess(t *testing.T) {
	c := NewCatalog()
	c.Add("base", mustEngine(t))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if i%2 == 0 {
					e, _ := FromReader("x", strings.NewReader("<a><b>y</b></a>"))
					c.Add("extra", e)
				} else {
					if _, err := c.Get(""); err != nil {
						t.Error(err)
						return
					}
					c.Names()
				}
			}
		}(i)
	}
	wg.Wait()
}
