package core

import (
	"strings"
	"sync"
	"testing"
)

func TestCatalogBasics(t *testing.T) {
	c := NewCatalog()
	if c.Len() != 0 {
		t.Fatal("new catalog not empty")
	}
	if _, err := c.Get(""); err == nil {
		t.Fatal("empty catalog should miss")
	}

	e1 := mustEngine(t)
	e2, err := FromReader("other", strings.NewReader("<a><b>x</b></a>"))
	if err != nil {
		t.Fatal(err)
	}
	c.Add("bib", e1)
	c.Add("tiny", e2)

	got, err := c.Get("tiny")
	if err != nil || got != e2 {
		t.Fatalf("Get(tiny) = %v, %v", got, err)
	}
	// The first added engine is the default.
	def, err := c.Get("")
	if err != nil || def != e1 {
		t.Fatalf("default = %v, %v", def, err)
	}
	if _, err := c.Get("missing"); err == nil {
		t.Fatal("unknown name should error")
	}

	names := c.Names()
	if len(names) != 2 || names[0] != "bib" || names[1] != "tiny" {
		t.Fatalf("names = %v", names)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCatalogReplace(t *testing.T) {
	c := NewCatalog()
	e1 := mustEngine(t)
	e2, _ := FromReader("v2", strings.NewReader("<a/>"))
	c.Add("d", e1)
	c.Add("d", e2)
	got, _ := c.Get("d")
	if got != e2 {
		t.Fatal("Add did not replace")
	}
	if c.Len() != 1 {
		t.Fatal("replace changed count")
	}
}

func TestCatalogRemove(t *testing.T) {
	// Each case builds a catalog by Add order, removes some names, and
	// checks the surviving default and membership.
	cases := []struct {
		name        string
		add         []string
		remove      []string
		wantErr     bool     // from the last remove
		wantDefault string   // surviving default ("" for empty catalog)
		wantNames   []string // Names() after removals
	}{
		{
			name: "remove non-default keeps default",
			add:  []string{"a", "b", "c"}, remove: []string{"b"},
			wantDefault: "a", wantNames: []string{"a", "c"},
		},
		{
			name: "remove default reassigns to first sorted",
			add:  []string{"m", "z", "b"}, remove: []string{"m"},
			wantDefault: "b", wantNames: []string{"b", "z"},
		},
		{
			name: "remove last empties catalog",
			add:  []string{"only"}, remove: []string{"only"},
			wantDefault: "", wantNames: nil,
		},
		{
			name: "remove unknown errors",
			add:  []string{"a"}, remove: []string{"missing"},
			wantErr: true, wantDefault: "a", wantNames: []string{"a"},
		},
		{
			name: "remove twice errors",
			add:  []string{"a", "b"}, remove: []string{"b", "b"},
			wantErr: true, wantDefault: "a", wantNames: []string{"a"},
		},
		{
			name: "drain then default follows",
			add:  []string{"a", "b", "c"}, remove: []string{"a", "b"},
			wantDefault: "c", wantNames: []string{"c"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCatalog()
			for _, n := range tc.add {
				e, err := FromReader(n, strings.NewReader("<a><b>x</b></a>"))
				if err != nil {
					t.Fatal(err)
				}
				c.Add(n, e)
			}
			var lastErr error
			for _, n := range tc.remove {
				lastErr = c.Remove(n)
			}
			if (lastErr != nil) != tc.wantErr {
				t.Fatalf("remove err = %v, wantErr = %v", lastErr, tc.wantErr)
			}
			if got := c.DefaultName(); got != tc.wantDefault {
				t.Errorf("default = %q, want %q", got, tc.wantDefault)
			}
			names := c.Names()
			if len(names) != len(tc.wantNames) {
				t.Fatalf("names = %v, want %v", names, tc.wantNames)
			}
			for i := range names {
				if names[i] != tc.wantNames[i] {
					t.Fatalf("names = %v, want %v", names, tc.wantNames)
				}
			}
			// The default must resolve via Get("") whenever one exists.
			if tc.wantDefault != "" {
				if _, err := c.Get(""); err != nil {
					t.Errorf("Get(\"\") after removals: %v", err)
				}
			} else if _, err := c.Get(""); err == nil {
				t.Error("Get(\"\") on emptied catalog should miss")
			}
		})
	}
}

func TestCatalogAddDefaultHandling(t *testing.T) {
	// Re-adding the default name must replace its backend in place and keep
	// it the default; adding after the catalog drained must install a fresh
	// default rather than leaving it orphaned.
	cases := []struct {
		name string
		ops  func(c *Catalog, mk func(string) *Engine)

		wantDefault string
	}{
		{
			name: "replace default keeps default",
			ops: func(c *Catalog, mk func(string) *Engine) {
				c.Add("d", mk("v1"))
				c.Add("x", mk("x"))
				c.Add("d", mk("v2")) // replace the default in place
			},
			wantDefault: "d",
		},
		{
			name: "add after drain installs new default",
			ops: func(c *Catalog, mk func(string) *Engine) {
				c.Add("d", mk("v1"))
				if err := c.Remove("d"); err != nil {
					panic(err)
				}
				c.Add("fresh", mk("f"))
			},
			wantDefault: "fresh",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mk := func(name string) *Engine {
				e, err := FromReader(name, strings.NewReader("<a><b>x</b></a>"))
				if err != nil {
					t.Fatal(err)
				}
				return e
			}
			c := NewCatalog()
			tc.ops(c, mk)
			if got := c.DefaultName(); got != tc.wantDefault {
				t.Fatalf("default = %q, want %q", got, tc.wantDefault)
			}
			def, err := c.Get("")
			if err != nil {
				t.Fatalf("Get(\"\"): %v", err)
			}
			want, err := c.Get(tc.wantDefault)
			if err != nil || def != want {
				t.Errorf("default engine mismatch: %v", err)
			}
		})
	}
}

func TestCatalogConcurrentAccess(t *testing.T) {
	c := NewCatalog()
	c.Add("base", mustEngine(t))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if i%2 == 0 {
					e, _ := FromReader("x", strings.NewReader("<a><b>y</b></a>"))
					c.Add("extra", e)
				} else {
					if _, err := c.Get(""); err != nil {
						t.Error(err)
						return
					}
					c.Names()
				}
			}
		}(i)
	}
	wg.Wait()
}
