package core

import (
	"context"
	"time"

	"lotusx/internal/complete"
	"lotusx/internal/doc"
	"lotusx/internal/join"
	"lotusx/internal/rank"
	"lotusx/internal/twig"
)

// Backend is the query-time surface shared by a single Engine and a sharded
// corpus (internal/corpus): twig search, position-aware completion, candidate
// explanation, and access to the backing per-document engines.  The serving
// layer, the REPL and the CLI all route through it, so a dataset can be one
// document or many shards without the front-ends caring.
//
// Implementations must be safe for concurrent use; corpus-backed ones pin an
// immutable shard snapshot per call, so results are always internally
// consistent even while shards are added or removed.
type Backend interface {
	// Info describes the backend for banners and dashboards.
	Info() BackendInfo

	// SearchHits evaluates q (which must be normalized, as by twig.Parse)
	// and returns backend-independent, fully rendered hits: corpus backends
	// fan out across shards and merge into one globally ranked page.
	SearchHits(ctx context.Context, q *twig.Query, opts SearchOptions) (*HitResult, error)

	// CompleteTags proposes tags for a new node attached under twig node
	// anchor via axis; anchor == complete.NewRoot (with q == nil allowed)
	// proposes root tags.  Corpus backends merge candidates across shards by
	// summed occurrence count.
	CompleteTags(ctx context.Context, q *twig.Query, anchor int, axis twig.Axis, prefix string, k int) ([]complete.Candidate, error)

	// CompleteValues proposes text values for the twig node focus.
	CompleteValues(ctx context.Context, q *twig.Query, focus int, prefix string, k int) ([]complete.Candidate, error)

	// ExplainTags reports where a candidate tag occurs at a position, most
	// frequent path first, capped at max (0 means all).
	ExplainTags(ctx context.Context, q *twig.Query, anchor int, axis twig.Axis, tag string, max int) ([]complete.Occurrence, error)

	// Engines returns the backing engines, one per shard, pinned to a
	// consistent snapshot.  A single Engine returns itself under its
	// document name.
	Engines() []NamedEngine

	// Generation identifies the data snapshot answers are served from.  It
	// changes (monotonically) whenever the backend's data changes — corpus
	// backends return their copy-on-write snapshot sequence, bumped on every
	// publish — so callers (the hot-path caches, internal/cache) can key
	// results by generation and let mutations invalidate by construction.  A
	// single immutable Engine always returns 0.
	Generation() uint64
}

// NamedEngine is one backing engine of a Backend.
type NamedEngine struct {
	Name   string
	Engine *Engine
}

// BackendInfo summarizes a Backend.
type BackendInfo struct {
	// Name is the dataset name (the document name for single engines).
	Name string `json:"name"`
	// Kind is "engine" for a single document, "corpus" for a shard set.
	Kind string `json:"kind"`
	// Shards counts backing shards (1 for a single engine).
	Shards int `json:"shards"`
	// DeltaShards counts async-ingested delta shards awaiting compaction
	// (corpus backends only; see internal/corpus and internal/ingest).
	DeltaShards int `json:"deltaShards,omitempty"`
	// Nodes, Tags, GuidePaths and Valued aggregate over all shards.
	Nodes      int `json:"nodes"`
	Tags       int `json:"tags"`
	GuidePaths int `json:"guidePaths"`
	Valued     int `json:"valued"`
}

// Hit is one answer of Backend.SearchHits, rendered so callers need no
// access to the backing document: path, snippet and highlights are
// materialized under the snapshot that produced them.
type Hit struct {
	// Shard names the shard the answer came from; "" for single-engine
	// backends.
	Shard string
	// Node is the matched output node within its shard's document.
	Node doc.NodeID
	// Path is the root-to-node tag path in the shard's document.
	Path string
	// Score is the ranking score; see package rank.
	Score float64
	// Scored carries the component breakdown for explain views.
	Scored rank.Scored
	// Snippet is the node's subtree as XML, truncated to
	// SearchOptions.SnippetMax bytes.
	Snippet string
	// Highlights mark the predicate term matches inside the answer.
	Highlights []Highlight
	// Rewrite is the relaxed query's surface form when the answer came from
	// rewriting, "" for exact answers.
	Rewrite string
	// Penalty is the rewrite's penalty, 0 for exact answers.
	Penalty float64
}

// HitResult is the outcome of Backend.SearchHits.  Its paging contract
// matches SearchResult: Total counts answers materialized before the page
// cut, so Total == Offset+K means further pages may exist.
type HitResult struct {
	Hits []Hit
	// Exact counts the leading hits that came from the original query.
	Exact int
	// Total counts distinct answers materialized before the page was cut.
	Total int
	// RewritesTried counts relaxed queries evaluated (summed over shards).
	RewritesTried int
	// Stats sums the join statistics over all shards evaluated.
	Stats join.Stats
	// Algorithm is the join algorithm that ran; "mixed" when auto resolved
	// differently across shards.
	Algorithm join.Algorithm
	// Shards counts the shards fanned out to (1 for a single engine).
	Shards int
	// Partial reports that some shards failed and the result covers only the
	// survivors (corpus backends under the degrade policy; always false for
	// a single engine, which either answers fully or errors).
	Partial bool
	// FailedShards names the shards that failed, sorted; nil when Partial is
	// false.
	FailedShards []string
	// Elapsed is the total wall-clock time including fan-out and merge.
	Elapsed time.Duration
}

// Compile-time check: a single Engine is a Backend.
var _ Backend = (*Engine)(nil)

// Info implements Backend.
func (e *Engine) Info() BackendInfo {
	st := e.Stats()
	return BackendInfo{
		Name:       st.Document,
		Kind:       "engine",
		Shards:     1,
		Nodes:      st.Nodes,
		Tags:       st.Tags,
		GuidePaths: st.GuidePaths,
		Valued:     st.Valued,
	}
}

// Engines implements Backend: a single engine is its own one-shard set.
func (e *Engine) Engines() []NamedEngine {
	return []NamedEngine{{Name: e.ix.Document().Name(), Engine: e}}
}

// Generation implements Backend: a single engine's document never changes.
func (e *Engine) Generation() uint64 { return 0 }

// SearchHits implements Backend over one document: SearchContext plus hit
// rendering.
func (e *Engine) SearchHits(ctx context.Context, q *twig.Query, opts SearchOptions) (*HitResult, error) {
	res, err := e.SearchContext(ctx, q, opts)
	if err != nil {
		return nil, err
	}
	out := &HitResult{
		Exact:         res.Exact,
		Total:         res.Total,
		RewritesTried: res.RewritesTried,
		Stats:         res.Stats,
		Algorithm:     res.Algorithm,
		Shards:        1,
		Elapsed:       res.Elapsed,
	}
	for _, a := range res.Answers {
		out.Hits = append(out.Hits, e.RenderHit("", q, a, opts.Canonical().SnippetMax))
	}
	return out, nil
}

// RenderHit materializes one answer into a Hit under this engine's document;
// shard tags corpus answers.  A corpus merges per-shard answers first and
// renders only the surviving page.
func (e *Engine) RenderHit(shard string, q *twig.Query, a Answer, snippetMax int) Hit {
	h := Hit{
		Shard:   shard,
		Node:    a.Node,
		Path:    e.ix.Document().Path(a.Node),
		Score:   a.Score,
		Scored:  a.Scored,
		Snippet: e.Snippet(a.Node, snippetMax),
	}
	answerQuery := q
	if a.Rewrite != nil {
		h.Rewrite = a.Rewrite.Query.String()
		h.Penalty = a.Rewrite.Penalty
		answerQuery = a.Rewrite.Query
	}
	h.Highlights = e.Highlights(answerQuery, a.Scored.Match)
	return h
}

// rootTagQuery builds the wildcard query that backs root-tag completion
// when the caller has no twig yet.
func rootTagQuery() (*twig.Query, error) {
	q := twig.NewQuery(twig.Wildcard)
	if err := q.Normalize(); err != nil {
		return nil, err
	}
	return q, nil
}

// CompleteTags implements Backend.
func (e *Engine) CompleteTags(ctx context.Context, q *twig.Query, anchor int, axis twig.Axis, prefix string, k int) ([]complete.Candidate, error) {
	if q == nil || anchor == complete.NewRoot {
		var err error
		if q, err = rootTagQuery(); err != nil {
			return nil, err
		}
		anchor = complete.NewRoot
	}
	return e.completer.SuggestTagsContext(ctx, q, anchor, axis, prefix, k)
}

// CompleteValues implements Backend.
func (e *Engine) CompleteValues(ctx context.Context, q *twig.Query, focus int, prefix string, k int) ([]complete.Candidate, error) {
	return e.completer.SuggestValuesContext(ctx, q, focus, prefix, k)
}

// ExplainTags implements Backend.
func (e *Engine) ExplainTags(ctx context.Context, q *twig.Query, anchor int, axis twig.Axis, tag string, max int) ([]complete.Occurrence, error) {
	return e.completer.ExplainTagContext(ctx, q, anchor, axis, tag, max)
}
