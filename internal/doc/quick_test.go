package doc

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// xmlTree is a quick-generatable random document.
type xmlTree struct {
	src string
}

// Generate implements quick.Generator: a random well-formed document with
// attributes, values and nesting.
func (xmlTree) Generate(rng *rand.Rand, size int) reflect.Value {
	tags := []string{"a", "b", "c", "item", "name"}
	vals := []string{"", "x", "hello world", "5 < 6 & 7", `quo"te`}
	var b strings.Builder
	var emit func(depth, budget int) int
	emit = func(depth, budget int) int {
		tag := tags[rng.Intn(len(tags))]
		b.WriteString("<" + tag)
		if rng.Intn(3) == 0 {
			b.WriteString(` k="` + escapeAttr(vals[rng.Intn(len(vals))]) + `"`)
		}
		b.WriteString(">")
		used := 1
		if v := vals[rng.Intn(len(vals))]; v != "" && rng.Intn(2) == 0 {
			b.WriteString(escapeText(v))
		}
		for used < budget && depth < 6 && rng.Intn(2) == 0 {
			used += emit(depth+1, budget-used)
		}
		b.WriteString("</" + tag + ">")
		return used
	}
	b.WriteString("<root>")
	budget := 1 + rng.Intn(size+1)
	for budget > 0 {
		budget -= emit(1, budget)
	}
	b.WriteString("</root>")
	return reflect.ValueOf(xmlTree{src: b.String()})
}

func escapeText(s string) string {
	return strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;").Replace(s)
}

func escapeAttr(s string) string {
	return strings.NewReplacer("&", "&amp;", "<", "&lt;", `"`, "&quot;").Replace(s)
}

// equalDocs compares the query-relevant content of two documents.
func equalDocs(a, b *Document) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		n := NodeID(i)
		if a.TagName(n) != b.TagName(n) || a.Value(n) != b.Value(n) ||
			a.Kind(n) != b.Kind(n) || a.Parent(n) != b.Parent(n) {
			return false
		}
	}
	return true
}

// TestQuickRenderReparse: rendering a parsed document and re-parsing it is
// the identity on the query-relevant content.
func TestQuickRenderReparse(t *testing.T) {
	f := func(tr xmlTree) bool {
		d, err := FromString("gen", tr.src)
		if err != nil {
			t.Logf("generator produced invalid XML: %v\n%s", err, tr.src)
			return false
		}
		d2, err := FromString("re", d.XMLString(d.Root()))
		if err != nil {
			t.Logf("re-parse failed: %v", err)
			return false
		}
		return equalDocs(d, d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSaveLoadIdentity: the binary format round-trips every generated
// document exactly (labels included).
func TestQuickSaveLoadIdentity(t *testing.T) {
	f := func(tr xmlTree) bool {
		d, err := FromString("gen", tr.src)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			return false
		}
		d2, err := Load(&buf)
		if err != nil {
			return false
		}
		if !equalDocs(d, d2) {
			return false
		}
		for i := 0; i < d.Len(); i++ {
			n := NodeID(i)
			if d.Region(n) != d2.Region(n) || d.Dewey(n).Compare(d2.Dewey(n)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStructuralInvariants: every generated document satisfies the
// labeling invariants the join algorithms rely on.
func TestQuickStructuralInvariants(t *testing.T) {
	f := func(tr xmlTree) bool {
		d, err := FromString("gen", tr.src)
		if err != nil {
			return false
		}
		for i := 0; i < d.Len(); i++ {
			n := NodeID(i)
			r := d.Region(n)
			if r.End <= r.Start {
				return false
			}
			// Node IDs are preorder: regions open in Start order.
			if i > 0 && !d.Region(NodeID(i-1)).Precedes(r) {
				return false
			}
			if p := d.Parent(n); p != None {
				if !d.Region(p).IsParent(r) {
					return false
				}
				if !d.Dewey(p).IsAncestor(d.Dewey(n)) {
					return false
				}
			}
			// Children linked list agrees with parent pointers.
			for c := d.FirstChild(n); c != None; c = d.NextSibling(c) {
				if d.Parent(c) != n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
