package doc

import (
	"bytes"
	"strings"
	"testing"
)

const bibXML = `<dblp>
  <article key="a1">
    <author>Jiaheng Lu</author>
    <title>Twig Joins</title>
    <year>2005</year>
  </article>
  <article key="a2">
    <author>Chunbin Lin</author>
    <author>Jiaheng Lu</author>
    <title>LotusX</title>
    <year>2012</year>
  </article>
</dblp>`

func mustDoc(t *testing.T, src string) *Document {
	t.Helper()
	d, err := FromString("test", src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuildBasicShape(t *testing.T) {
	d := mustDoc(t, bibXML)
	// dblp + 2 article + 2 @key + 3+4 children? article1: author,title,year;
	// article2: author,author,title,year. Total = 1 + 2 + 2 + 3 + 4 = 12.
	if d.Len() != 12 {
		t.Fatalf("Len = %d, want 12", d.Len())
	}
	if d.TagName(d.Root()) != "dblp" {
		t.Fatalf("root tag = %q", d.TagName(d.Root()))
	}
	if d.Parent(d.Root()) != None {
		t.Fatal("root parent should be None")
	}
}

func TestTagDict(t *testing.T) {
	d := mustDoc(t, bibXML)
	tags := d.Tags()
	for _, name := range []string{"dblp", "article", "@key", "author", "title", "year"} {
		if tags.ID(name) == NoTag {
			t.Errorf("tag %q missing", name)
		}
	}
	if tags.ID("nosuch") != NoTag {
		t.Error("unknown tag should map to NoTag")
	}
	if tags.Len() != 6 {
		t.Errorf("Len = %d, want 6", tags.Len())
	}
	if got := tags.Name(tags.ID("author")); got != "author" {
		t.Errorf("round-trip name = %q", got)
	}
}

func TestValuesAndAttributes(t *testing.T) {
	d := mustDoc(t, bibXML)
	var authors, keys []string
	for i := 0; i < d.Len(); i++ {
		n := NodeID(i)
		switch d.TagName(n) {
		case "author":
			authors = append(authors, d.Value(n))
			if d.Kind(n) != Element {
				t.Errorf("author should be an element")
			}
		case "@key":
			keys = append(keys, d.Value(n))
			if d.Kind(n) != Attribute {
				t.Errorf("@key should be an attribute node")
			}
			if d.TagName(d.Parent(n)) != "article" {
				t.Errorf("@key parent = %q", d.TagName(d.Parent(n)))
			}
		}
	}
	wantAuthors := []string{"Jiaheng Lu", "Chunbin Lin", "Jiaheng Lu"}
	if strings.Join(authors, "|") != strings.Join(wantAuthors, "|") {
		t.Errorf("authors = %v", authors)
	}
	if strings.Join(keys, "|") != "a1|a2" {
		t.Errorf("keys = %v", keys)
	}
}

func TestMixedContentConcatenation(t *testing.T) {
	d := mustDoc(t, `<p>hello <b>bold</b> world</p>`)
	root := d.Root()
	if got := d.Value(root); got != "hello world" {
		t.Errorf("mixed value = %q, want %q", got, "hello world")
	}
	kids := d.Children(root, nil)
	if len(kids) != 1 || d.Value(kids[0]) != "bold" {
		t.Errorf("children = %v", kids)
	}
}

func TestRegionsAreConsistent(t *testing.T) {
	d := mustDoc(t, bibXML)
	for i := 0; i < d.Len(); i++ {
		n := NodeID(i)
		r := d.Region(n)
		if r.End <= r.Start {
			t.Fatalf("node %d has invalid region %+v", i, r)
		}
		if p := d.Parent(n); p != None {
			if !d.Region(p).IsParent(r) {
				t.Fatalf("parent region %+v does not contain child %+v", d.Region(p), r)
			}
			if !d.IsAncestor(p, n) {
				t.Fatalf("IsAncestor(parent) false for node %d", i)
			}
		}
	}
}

func TestDeweyMatchesParents(t *testing.T) {
	d := mustDoc(t, bibXML)
	for i := 0; i < d.Len(); i++ {
		n := NodeID(i)
		dl := d.Dewey(n)
		if p := d.Parent(n); p != None {
			pl := d.Dewey(p)
			if !pl.IsAncestor(dl) {
				t.Fatalf("dewey %v is not ancestor of %v", pl, dl)
			}
			if len(dl) != len(pl)+1 {
				t.Fatalf("dewey level mismatch: %v vs %v", pl, dl)
			}
		} else if len(dl) != 1 {
			t.Fatalf("root dewey = %v", dl)
		}
	}
}

func TestDocumentOrderIsNodeIDOrder(t *testing.T) {
	d := mustDoc(t, bibXML)
	for i := 1; i < d.Len(); i++ {
		if !d.Region(NodeID(i - 1)).Precedes(d.Region(NodeID(i))) {
			t.Fatalf("node %d does not precede node %d", i-1, i)
		}
	}
}

func TestChildrenAndSiblings(t *testing.T) {
	d := mustDoc(t, bibXML)
	root := d.Root()
	kids := d.Children(root, nil)
	if len(kids) != 2 {
		t.Fatalf("root children = %d, want 2", len(kids))
	}
	a2 := kids[1]
	tags := []string{}
	for _, c := range d.Children(a2, nil) {
		tags = append(tags, d.TagName(c))
	}
	want := "@key author author title year"
	if strings.Join(tags, " ") != want {
		t.Errorf("article2 children = %v, want %q", tags, want)
	}
}

func TestSubtreeSize(t *testing.T) {
	d := mustDoc(t, bibXML)
	if got := d.SubtreeSize(d.Root()); got != d.Len() {
		t.Errorf("root subtree = %d, want %d", got, d.Len())
	}
	kids := d.Children(d.Root(), nil)
	if got := d.SubtreeSize(kids[0]); got != 5 {
		t.Errorf("article1 subtree = %d, want 5", got)
	}
}

func TestPath(t *testing.T) {
	d := mustDoc(t, bibXML)
	var authorNode NodeID = None
	for i := 0; i < d.Len(); i++ {
		if d.TagName(NodeID(i)) == "author" {
			authorNode = NodeID(i)
			break
		}
	}
	if got := d.Path(authorNode); got != "/dblp/article/author" {
		t.Errorf("path = %q", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := mustDoc(t, bibXML)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != d.Len() || d2.Name() != d.Name() {
		t.Fatalf("round-trip len/name mismatch")
	}
	for i := 0; i < d.Len(); i++ {
		n := NodeID(i)
		if d.TagName(n) != d2.TagName(n) || d.Value(n) != d2.Value(n) ||
			d.Region(n) != d2.Region(n) || d.Parent(n) != d2.Parent(n) ||
			d.Kind(n) != d2.Kind(n) ||
			d.Dewey(n).Compare(d2.Dewey(n)) != 0 {
			t.Fatalf("node %d differs after round trip", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a document")); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Load(strings.NewReader("LTXD\xff\xff\xff\xff")); err == nil {
		t.Fatal("expected error for bad version")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestRenderRoundTrip(t *testing.T) {
	d := mustDoc(t, bibXML)
	rendered := d.XMLString(d.Root())
	d2, err := FromString("rendered", rendered)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, rendered)
	}
	if d2.Len() != d.Len() {
		t.Fatalf("re-parsed len = %d, want %d\n%s", d2.Len(), d.Len(), rendered)
	}
	for i := 0; i < d.Len(); i++ {
		n := NodeID(i)
		if d.TagName(n) != d2.TagName(n) || d.Value(n) != d2.Value(n) {
			t.Fatalf("node %d differs after render round trip: %q/%q vs %q/%q",
				i, d.TagName(n), d.Value(n), d2.TagName(n), d2.Value(n))
		}
	}
}

func TestRenderEscapes(t *testing.T) {
	d := mustDoc(t, `<a t="x&amp;y">5 &lt; 6</a>`)
	out := d.XMLString(d.Root())
	if !strings.Contains(out, "x&amp;y") || !strings.Contains(out, "5 &lt; 6") {
		t.Errorf("escaping missing in %q", out)
	}
	if _, err := FromString("re", out); err != nil {
		t.Errorf("escaped output does not re-parse: %v", err)
	}
}

func TestParseErrorPropagates(t *testing.T) {
	if _, err := FromString("bad", "<a><b></a>"); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := FromString("empty", ""); err == nil {
		t.Fatal("expected error for empty doc")
	}
}

func TestDeepDocument(t *testing.T) {
	var b strings.Builder
	const depth = 500
	for i := 0; i < depth; i++ {
		b.WriteString("<n>")
	}
	b.WriteString("leaf")
	for i := 0; i < depth; i++ {
		b.WriteString("</n>")
	}
	d := mustDoc(t, b.String())
	if d.Len() != depth {
		t.Fatalf("Len = %d", d.Len())
	}
	deepest := NodeID(depth - 1)
	if d.Value(deepest) != "leaf" {
		t.Errorf("deepest value = %q", d.Value(deepest))
	}
	if int(d.Region(deepest).Level) != depth-1 {
		t.Errorf("deepest level = %d", d.Region(deepest).Level)
	}
	if len(d.Dewey(deepest)) != depth {
		t.Errorf("deepest dewey len = %d", len(d.Dewey(deepest)))
	}
}

func TestNamespacePrefixedTags(t *testing.T) {
	// Namespace prefixes are kept literally: "dc:title" is one tag name.
	d := mustDoc(t, `<rdf:RDF xmlns:dc="http://example/dc">
	  <dc:title>XML</dc:title>
	</rdf:RDF>`)
	tags := d.Tags()
	if tags.ID("dc:title") == NoTag {
		t.Fatal("prefixed tag not interned literally")
	}
	if tags.ID("@xmlns:dc") == NoTag {
		t.Fatal("namespace declaration should surface as an attribute node")
	}
	var title NodeID = None
	for i := 0; i < d.Len(); i++ {
		if d.TagName(NodeID(i)) == "dc:title" {
			title = NodeID(i)
		}
	}
	if title == None || d.Value(title) != "XML" {
		t.Fatalf("dc:title value = %v", title)
	}
}
