package doc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"lotusx/internal/labeling"
)

// Binary layout (all integers little-endian):
//
//	magic "LTXD" | version u32 | name | tag dict | node table | values | dewey
//
// Strings are u32 length + bytes.  The format is a cache, not an exchange
// format: Load rejects any version other than the one Save writes.
const (
	docMagic   = "LTXD"
	docVersion = 1
)

type countingWriter struct {
	w   *bufio.Writer
	err error
}

func (cw *countingWriter) u32(v uint32) {
	if cw.err != nil {
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, cw.err = cw.w.Write(b[:])
}

func (cw *countingWriter) i32(v int32) { cw.u32(uint32(v)) }

func (cw *countingWriter) str(s string) {
	cw.u32(uint32(len(s)))
	if cw.err != nil {
		return
	}
	_, cw.err = cw.w.WriteString(s)
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (rd *reader) u32() uint32 {
	if rd.err != nil {
		return 0
	}
	var b [4]byte
	if _, err := io.ReadFull(rd.r, b[:]); err != nil {
		rd.err = err
		return 0
	}
	return binary.LittleEndian.Uint32(b[:])
}

func (rd *reader) i32() int32 { return int32(rd.u32()) }

func (rd *reader) str() string {
	n := rd.u32()
	if rd.err != nil {
		return ""
	}
	if n > 1<<30 {
		rd.err = fmt.Errorf("doc: corrupt string length %d", n)
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(rd.r, b); err != nil {
		rd.err = err
		return ""
	}
	return string(b)
}

// Save writes the document in its binary cache format.
func (d *Document) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}
	if _, err := bw.WriteString(docMagic); err != nil {
		return err
	}
	cw.u32(docVersion)
	cw.str(d.name)

	cw.u32(uint32(d.tags.Len()))
	for _, name := range d.tags.names {
		cw.str(name)
	}

	cw.u32(uint32(len(d.nodes)))
	for i := range d.nodes {
		n := &d.nodes[i]
		cw.i32(int32(n.tag))
		cw.u32(uint32(n.kind))
		cw.i32(n.region.Start)
		cw.i32(n.region.End)
		cw.i32(n.region.Level)
		cw.i32(int32(n.parent))
		cw.i32(int32(n.firstChild))
		cw.i32(int32(n.nextSibling))
	}
	for _, v := range d.values {
		cw.str(v)
	}
	for i := range d.nodes {
		dl := d.dewey.At(int32(i))
		cw.u32(uint32(len(dl)))
		for _, digit := range dl {
			cw.i32(digit)
		}
	}
	if cw.err != nil {
		return cw.err
	}
	return bw.Flush()
}

// Load reads a document previously written by Save.
func Load(r io.Reader) (*Document, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(docMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("doc: reading magic: %w", err)
	}
	if string(magic) != docMagic {
		return nil, fmt.Errorf("doc: bad magic %q", magic)
	}
	rd := &reader{r: br}
	if v := rd.u32(); v != docVersion && rd.err == nil {
		return nil, fmt.Errorf("doc: unsupported version %d", v)
	}
	d := &Document{tags: newTagDict()}
	d.name = rd.str()

	ntags := rd.u32()
	for i := uint32(0); i < ntags && rd.err == nil; i++ {
		d.tags.intern(rd.str())
	}

	nnodes := rd.u32()
	if rd.err == nil && nnodes > 1<<28 {
		return nil, fmt.Errorf("doc: corrupt node count %d", nnodes)
	}
	d.nodes = make([]node, nnodes)
	for i := range d.nodes {
		n := &d.nodes[i]
		n.tag = TagID(rd.i32())
		n.kind = Kind(rd.u32())
		n.region.Start = rd.i32()
		n.region.End = rd.i32()
		n.region.Level = rd.i32()
		n.parent = NodeID(rd.i32())
		n.firstChild = NodeID(rd.i32())
		n.nextSibling = NodeID(rd.i32())
	}
	d.values = make([]string, nnodes)
	for i := range d.values {
		d.values[i] = rd.str()
	}
	d.dewey = labeling.NewDeweyArena(int(nnodes), 6)
	scratch := make(labeling.Dewey, 0, 16)
	for i := uint32(0); i < nnodes && rd.err == nil; i++ {
		ln := rd.u32()
		if ln > 1<<20 {
			return nil, fmt.Errorf("doc: corrupt dewey length %d", ln)
		}
		scratch = scratch[:0]
		for j := uint32(0); j < ln; j++ {
			scratch = append(scratch, rd.i32())
		}
		d.dewey.Append(scratch)
	}
	if rd.err != nil {
		return nil, fmt.Errorf("doc: load: %w", rd.err)
	}
	return d, nil
}
