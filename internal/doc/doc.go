// Package doc implements the in-memory XML document store used by all LotusX
// indexes.  A Document is built in a single streaming pass over the parser's
// events: every element and attribute becomes a node with a containment
// region label and a Dewey label, attributes are modeled as children tagged
// "@name" (the convention of the twig-join literature, so query predicates
// treat them uniformly), and each node's value is the concatenation of its
// direct text children.
package doc

import (
	"fmt"
	"io"
	"strings"

	"lotusx/internal/labeling"
	"lotusx/internal/xmlparse"
)

// NodeID identifies a node within its Document.  Node IDs are assigned in
// document order: NodeID(i) is the i-th node in preorder.
type NodeID int32

// None is the NodeID used where no node applies (e.g. the root's parent).
const None NodeID = -1

// TagID is an interned tag name.  Attribute tags carry a leading '@'.
type TagID int32

// NoTag is returned by TagDict.ID for names that do not occur in the
// document.
const NoTag TagID = -1

// Kind discriminates node kinds.
type Kind uint8

const (
	// Element is an XML element node.
	Element Kind = iota
	// Attribute is an attribute node, tagged "@name", holding the attribute
	// value.
	Attribute
)

// TagDict interns tag names.  It is immutable after the owning Document is
// built and safe for concurrent readers.
type TagDict struct {
	byName map[string]TagID
	names  []string
}

func newTagDict() *TagDict {
	return &TagDict{byName: make(map[string]TagID)}
}

func (d *TagDict) intern(name string) TagID {
	if id, ok := d.byName[name]; ok {
		return id
	}
	id := TagID(len(d.names))
	d.names = append(d.names, name)
	d.byName[name] = id
	return id
}

// ID returns the TagID of name, or NoTag if the name never occurs.
func (d *TagDict) ID(name string) TagID {
	if id, ok := d.byName[name]; ok {
		return id
	}
	return NoTag
}

// Name returns the name of tag id.
func (d *TagDict) Name(id TagID) string { return d.names[id] }

// Len returns the number of distinct tags.
func (d *TagDict) Len() int { return len(d.names) }

// node is the per-node record.  Child links let the server render subtrees
// without scanning; parent links let ranking walk upward.
type node struct {
	tag         TagID
	kind        Kind
	region      labeling.Region
	parent      NodeID
	firstChild  NodeID
	nextSibling NodeID
}

// Document is an immutable labeled XML document.
type Document struct {
	name   string
	tags   *TagDict
	nodes  []node
	values []string // direct-text value per node; "" when absent
	dewey  *labeling.DeweyArena
}

// Name returns the document's name (typically the source file name).
func (d *Document) Name() string { return d.name }

// Tags returns the document's tag dictionary.
func (d *Document) Tags() *TagDict { return d.tags }

// Len returns the number of nodes.
func (d *Document) Len() int { return len(d.nodes) }

// Root returns the document root element.
func (d *Document) Root() NodeID { return 0 }

// Tag returns the tag of node n.
func (d *Document) Tag(n NodeID) TagID { return d.nodes[n].tag }

// TagName returns the tag name of node n.
func (d *Document) TagName(n NodeID) string { return d.tags.Name(d.nodes[n].tag) }

// Kind returns the kind of node n.
func (d *Document) Kind(n NodeID) Kind { return d.nodes[n].kind }

// Region returns the containment label of node n.
func (d *Document) Region(n NodeID) labeling.Region { return d.nodes[n].region }

// Dewey returns the Dewey label of node n.  The result aliases internal
// storage and must not be modified.
func (d *Document) Dewey(n NodeID) labeling.Dewey { return d.dewey.At(int32(n)) }

// Parent returns the parent of node n, or None for the root.
func (d *Document) Parent(n NodeID) NodeID { return d.nodes[n].parent }

// Value returns the node's own text value: for elements, the concatenated
// direct text children (whitespace-trimmed); for attributes, the attribute
// value.
func (d *Document) Value(n NodeID) string { return d.values[n] }

// Children returns the children of node n in document order, appended to
// dst.
func (d *Document) Children(n NodeID, dst []NodeID) []NodeID {
	for c := d.nodes[n].firstChild; c != None; c = d.nodes[c].nextSibling {
		dst = append(dst, c)
	}
	return dst
}

// FirstChild returns n's first child, or None.
func (d *Document) FirstChild(n NodeID) NodeID { return d.nodes[n].firstChild }

// NextSibling returns n's next sibling, or None.
func (d *Document) NextSibling(n NodeID) NodeID { return d.nodes[n].nextSibling }

// IsAncestor reports whether a is a proper ancestor of b.
func (d *Document) IsAncestor(a, b NodeID) bool {
	return d.nodes[a].region.IsAncestor(d.nodes[b].region)
}

// SubtreeSize returns the number of nodes in n's subtree, n included.
// Because IDs are preorder, a subtree is a contiguous ID range.
func (d *Document) SubtreeSize(n NodeID) int {
	end := d.nodes[n].region.End
	i := int(n) + 1
	for i < len(d.nodes) && d.nodes[i].region.Start < end {
		i++
	}
	return i - int(n)
}

// Path returns the tag-name path from the root to n, e.g.
// "/dblp/article/author".
func (d *Document) Path(n NodeID) string {
	var parts []string
	for cur := n; cur != None; cur = d.nodes[cur].parent {
		parts = append(parts, d.TagName(cur))
	}
	var b strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(parts[i])
	}
	return b.String()
}

// FromReader parses src into a Document named name.
func FromReader(name string, src io.Reader) (*Document, error) {
	p := xmlparse.NewParser(src)
	return build(name, p)
}

// FromString parses src into a Document, convenient in tests.
func FromString(name, src string) (*Document, error) {
	return FromReader(name, strings.NewReader(src))
}

func build(name string, p *xmlparse.Parser) (*Document, error) {
	d := &Document{
		name:  name,
		tags:  newTagDict(),
		dewey: labeling.NewDeweyArena(1024, 6),
	}
	ra := labeling.NewAssigner()
	da := labeling.NewDeweyAssigner()

	type openElem struct {
		id        NodeID
		lastChild NodeID
		text      strings.Builder
	}
	var stack []*openElem

	appendChild := func(parent *openElem, id NodeID) {
		if parent == nil {
			return
		}
		if parent.lastChild == None {
			d.nodes[parent.id].firstChild = id
		} else {
			d.nodes[parent.lastChild].nextSibling = id
		}
		parent.lastChild = id
	}

	for {
		ev, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch ev.Kind {
		case xmlparse.StartElement:
			start, level := ra.Enter()
			dl := da.Enter()
			id := NodeID(len(d.nodes))
			var parent *openElem
			if len(stack) > 0 {
				parent = stack[len(stack)-1]
			}
			pid := None
			if parent != nil {
				pid = parent.id
			}
			d.nodes = append(d.nodes, node{
				tag:         d.tags.intern(ev.Name),
				kind:        Element,
				region:      labeling.Region{Start: start, Level: level}, // End filled on close
				parent:      pid,
				firstChild:  None,
				nextSibling: None,
			})
			d.values = append(d.values, "")
			d.dewey.Append(dl)
			appendChild(parent, id)
			stack = append(stack, &openElem{id: id, lastChild: None})

			// Attribute nodes are synthesized as immediate children, each
			// with its own (zero-width-subtree) region and Dewey label.
			self := stack[len(stack)-1]
			for _, a := range ev.Attrs {
				ra.Enter()
				adl := da.Enter()
				aid := NodeID(len(d.nodes))
				areg := ra.Leave()
				da.Leave()
				d.nodes = append(d.nodes, node{
					tag:         d.tags.intern("@" + a.Name),
					kind:        Attribute,
					region:      areg,
					parent:      id,
					firstChild:  None,
					nextSibling: None,
				})
				d.values = append(d.values, a.Value)
				d.dewey.Append(adl)
				appendChild(self, aid)
			}

		case xmlparse.EndElement:
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			reg := ra.Leave()
			da.Leave()
			d.nodes[top.id].region = reg
			d.values[top.id] = strings.TrimSpace(top.text.String())

		case xmlparse.Text:
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				if top.text.Len() > 0 {
					top.text.WriteByte(' ')
				}
				top.text.WriteString(strings.TrimSpace(ev.Value))
			}

		case xmlparse.Comment, xmlparse.ProcInst:
			// Comments and PIs carry no query-relevant content.
		}
	}
	if len(d.nodes) == 0 {
		return nil, fmt.Errorf("doc: %s: empty document", name)
	}
	return d, nil
}
