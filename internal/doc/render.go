package doc

import (
	"bufio"
	"io"
	"strings"
)

// escape writes s with the XML special characters replaced by entities.
var escaper = strings.NewReplacer(
	"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;",
)

// WriteXML serializes the subtree rooted at n as indented XML.  Attribute
// children are rendered as attributes; element values are rendered as a
// single text child.  The output is a faithful, query-equivalent rendering,
// not byte-identical to the original (comments, PIs and text layout were not
// retained).
func (d *Document) WriteXML(w io.Writer, n NodeID) error {
	bw := bufio.NewWriter(w)
	d.writeNode(bw, n, 0)
	return bw.Flush()
}

func (d *Document) writeNode(bw *bufio.Writer, n NodeID, depth int) {
	indent := strings.Repeat("  ", depth)
	if d.Kind(n) == Attribute {
		// An attribute node rendered on its own (e.g. as a query answer)
		// has no element form; show it as name="value".
		bw.WriteString(indent)
		bw.WriteString(d.TagName(n)[1:])
		bw.WriteString(`="`)
		escaper.WriteString(bw, d.Value(n))
		bw.WriteString("\"\n")
		return
	}
	bw.WriteString(indent)
	bw.WriteByte('<')
	bw.WriteString(d.TagName(n))

	var elemKids []NodeID
	for c := d.FirstChild(n); c != None; c = d.NextSibling(c) {
		if d.Kind(c) == Attribute {
			bw.WriteByte(' ')
			bw.WriteString(d.TagName(c)[1:]) // strip '@'
			bw.WriteString(`="`)
			escaper.WriteString(bw, d.Value(c))
			bw.WriteByte('"')
		} else {
			elemKids = append(elemKids, c)
		}
	}

	value := d.Value(n)
	if len(elemKids) == 0 && value == "" {
		bw.WriteString("/>\n")
		return
	}
	bw.WriteByte('>')
	if len(elemKids) == 0 {
		escaper.WriteString(bw, value)
		bw.WriteString("</")
		bw.WriteString(d.TagName(n))
		bw.WriteString(">\n")
		return
	}
	bw.WriteByte('\n')
	if value != "" {
		bw.WriteString(indent)
		bw.WriteString("  ")
		escaper.WriteString(bw, value)
		bw.WriteByte('\n')
	}
	for _, c := range elemKids {
		d.writeNode(bw, c, depth+1)
	}
	bw.WriteString(indent)
	bw.WriteString("</")
	bw.WriteString(d.TagName(n))
	bw.WriteString(">\n")
}

// XMLString renders the subtree rooted at n to a string.
func (d *Document) XMLString(n NodeID) string {
	var b strings.Builder
	d.WriteXML(&b, n)
	return b.String()
}
