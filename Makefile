# The tier-1 verification recipe (ROADMAP.md): build, vet, the full test
# suite, and the race detector over the concurrency-heavy packages.  `make
# check` is the one command every change must keep green.

GO ?= go

RACE_PKGS := ./internal/server/... ./internal/core/... ./internal/corpus/... ./internal/slo/... \
	./internal/obs/... ./internal/metrics/... ./internal/cache/... \
	./internal/join/... ./internal/index/... ./internal/ingest/... ./internal/remote/... \
	./internal/httpmw/... ./cmd/lotusx-server/...

.PHONY: check build vet test race api-check bench profile clean

check: build vet test race api-check

# The API contract gate: the served route table and response envelopes must
# match internal/server/testdata/api_contract.golden.  After an intentional
# API change, regenerate with:
#   go test ./internal/server/ -run TestAPIContract -update
api-check:
	$(GO) test ./internal/server/ -run TestAPIContract

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# The experiment suite (E1..E13, A1..A3); SCALE sweeps dataset size.
SCALE ?= 1
bench:
	$(GO) run ./cmd/lotusx-bench -scale $(SCALE)

# CPU-profile a live server: serve XMark sharded with the debug listener on,
# drive the E12 workload query at it, and capture /debug/pprof/profile into
# profile.pb.gz.  Inspect with `go tool pprof profile.pb.gz`.
PROFILE_SECONDS ?= 5
profile:
	@mkdir -p bin && $(GO) build -o bin/lotusx-server ./cmd/lotusx-server
	@bin/lotusx-server -dataset xmark -scale $(SCALE) -shards 4 -quiet \
		-addr 127.0.0.1:18080 -debug-addr 127.0.0.1:16060 & \
	SRV=$$!; trap 'kill $$SRV 2>/dev/null' EXIT INT TERM; sleep 1; \
	( while kill -0 $$SRV 2>/dev/null; do \
		curl -s -o /dev/null -X POST -H 'Content-Type: application/json' \
			-d '{"query":"//item[description//text contains \"vintage\"]/name","k":100}' \
			http://127.0.0.1:18080/api/v1/query; \
	done ) & LOAD=$$!; \
	echo "profiling $(PROFILE_SECONDS)s of query load..."; \
	curl -s -o profile.pb.gz \
		"http://127.0.0.1:16060/debug/pprof/profile?seconds=$(PROFILE_SECONDS)"; \
	kill $$LOAD $$SRV 2>/dev/null; trap - EXIT INT TERM; \
	echo "wrote profile.pb.gz — inspect with: go tool pprof profile.pb.gz"

clean:
	$(GO) clean ./...
	rm -rf bin profile.pb.gz
