# The tier-1 verification recipe (ROADMAP.md): build, vet, the full test
# suite, and the race detector over the concurrency-heavy packages.  `make
# check` is the one command every change must keep green.

GO ?= go

RACE_PKGS := ./internal/server/... ./internal/core/... ./internal/corpus/...

.PHONY: check build vet test race bench clean

check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# The experiment suite (E1..E12, A1..A3); SCALE sweeps dataset size.
SCALE ?= 1
bench:
	$(GO) run ./cmd/lotusx-bench -scale $(SCALE)

clean:
	$(GO) clean ./...
