// Package lotusx is the public API of the LotusX reproduction: a
// position-aware XML search engine with twig-pattern queries,
// auto-completion, ranking and query rewriting, after "LotusX: A
// Position-Aware XML Graphical Search System with Auto-Completion"
// (Lin, Lu, Ling, Cautis; ICDE 2012).
//
// Typical use:
//
//	engine, err := lotusx.FromFile("dblp.xml")
//	res, err := engine.SearchString(`//article[author = "Jiaheng Lu"]/title`,
//	    lotusx.SearchOptions{K: 10, Rewrite: true})
//	for _, a := range res.Answers {
//	    fmt.Println(engine.Snippet(a.Node, 200))
//	}
//
// Interactive construction — the GUI workflow — goes through a Session:
//
//	s := engine.NewSession()
//	root, _ := s.Root("article", lotusx.Descendant)
//	cands, _ := s.SuggestTags(root, lotusx.Child, "au", 8) // position-aware
//	author, _ := s.AddNode(root, lotusx.Child, cands[0].Text)
//	vals, _ := s.SuggestValues(author, "ji", 8)
//	s.SetPredicate(author, lotusx.Eq, vals[0].Text)
//	res, _ := s.Run(lotusx.SearchOptions{})
//
// The package is a thin facade over the internal implementation; every type
// here is an alias, so values flow freely between the facade and internal
// helpers used in examples and benchmarks.
package lotusx

import (
	"io"

	"lotusx/internal/complete"
	"lotusx/internal/core"
	"lotusx/internal/doc"
	"lotusx/internal/join"
	"lotusx/internal/rank"
	"lotusx/internal/rewrite"
	"lotusx/internal/twig"
)

// Engine is a fully built LotusX instance over one XML document.
type Engine = core.Engine

// Session models interactive, GUI-style query construction.
type Session = core.Session

// SearchOptions tunes Engine.Search.
type SearchOptions = core.SearchOptions

// SearchResult is the outcome of a search.
type SearchResult = core.SearchResult

// Answer is one ranked query answer.
type Answer = core.Answer

// Stats summarizes an engine.
type Stats = core.Stats

// Query is a twig pattern.
type Query = twig.Query

// QueryNode is one node of a twig pattern.
type QueryNode = twig.Node

// Axis is a twig edge type.
type Axis = twig.Axis

// Axes.
const (
	Child      = twig.Child
	Descendant = twig.Descendant
)

// PredOp is a value-predicate operator.
type PredOp = twig.PredOp

// Predicate operators.
const (
	NoPred   = twig.NoPred
	Eq       = twig.Eq
	Contains = twig.Contains
)

// Wildcard matches any element tag.
const Wildcard = twig.Wildcard

// Algorithm selects a twig evaluation strategy.
type Algorithm = join.Algorithm

// The implemented twig join algorithms.
const (
	NestedLoop = join.NestedLoop
	Structural = join.Structural
	PathStack  = join.PathStack
	TwigStack  = join.TwigStack
)

// Candidate is one auto-completion suggestion.
type Candidate = complete.Candidate

// NewRoot is the completion anchor for a query's root node.
const NewRoot = complete.NewRoot

// Scored is a ranked match with its score breakdown.
type Scored = rank.Scored

// Highlight explains which terms of an answer satisfied a value predicate.
type Highlight = core.Highlight

// Span is a byte range inside a highlighted value.
type Span = core.Span

// Underline renders a value with its highlight spans marked, for terminals.
func Underline(value string, spans []Span) string { return core.Underline(value, spans) }

// Rewrite is a relaxed query variant with its penalty and provenance.
type Rewrite = rewrite.Rewrite

// NodeID identifies a document node.
type NodeID = doc.NodeID

// Document is a parsed, labeled XML document.
type Document = doc.Document

// FromFile parses the XML file at path and builds an engine.
func FromFile(path string) (*Engine, error) { return core.FromFile(path) }

// FromReader parses XML from r and builds an engine.
func FromReader(name string, r io.Reader) (*Engine, error) { return core.FromReader(name, r) }

// FromDocument builds an engine over an already-parsed document.
func FromDocument(d *Document) *Engine { return core.FromDocument(d) }

// Open loads an engine previously persisted with Engine.Save.
func Open(r io.Reader) (*Engine, error) { return core.Open(r) }

// Parse parses a query in the XPath subset (see the twig package docs for
// the grammar).
func Parse(query string) (*Query, error) { return twig.Parse(query) }

// MustParse is Parse for queries known to be valid; it panics on error.
func MustParse(query string) *Query { return twig.MustParse(query) }

// ParseDocument parses an XML document without building an engine.
func ParseDocument(name string, r io.Reader) (*Document, error) {
	return doc.FromReader(name, r)
}
