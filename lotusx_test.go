package lotusx_test

import (
	"bytes"
	"strings"
	"testing"

	"lotusx"
)

const bibXML = `<dblp>
  <article key="a1">
    <author>Jiaheng Lu</author>
    <title>Holistic Twig Joins</title>
    <year>2005</year>
  </article>
  <article key="a2">
    <author>Chunbin Lin</author>
    <title>LotusX</title>
    <year>2012</year>
  </article>
</dblp>`

func TestFacadeEndToEnd(t *testing.T) {
	engine, err := lotusx.FromReader("bib", strings.NewReader(bibXML))
	if err != nil {
		t.Fatal(err)
	}

	res, err := engine.SearchString(`//article[year = "2012"]/title`, lotusx.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Fatalf("answers = %d", len(res.Answers))
	}
	if snippet := engine.Snippet(res.Answers[0].Node, 0); !strings.Contains(snippet, "LotusX") {
		t.Errorf("snippet = %q", snippet)
	}

	// Session workflow through the facade.
	s := engine.NewSession()
	root, err := s.Root("article", lotusx.Descendant)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := s.SuggestTags(root, lotusx.Child, "au", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].Text != "author" {
		t.Fatalf("cands = %+v", cands)
	}
	if _, err := s.AddNode(root, lotusx.Child, cands[0].Text); err != nil {
		t.Fatal(err)
	}
	sr, err := s.Run(lotusx.SearchOptions{Algorithm: lotusx.TwigStack})
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Answers) != 2 {
		t.Fatalf("session answers = %d", len(sr.Answers))
	}

	// Persistence through the facade.
	var buf bytes.Buffer
	if err := engine.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := lotusx.Open(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeQueryHelpers(t *testing.T) {
	q, err := lotusx.Parse("//a[b]")
	if err != nil || q.Len() != 2 {
		t.Fatalf("Parse: %v %v", q, err)
	}
	if lotusx.MustParse("//a").Root.Tag != "a" {
		t.Fatal("MustParse broken")
	}
	d, err := lotusx.ParseDocument("x", strings.NewReader("<a><b/></a>"))
	if err != nil || d.Len() != 2 {
		t.Fatalf("ParseDocument: %v %v", d, err)
	}
}
