package lotusx_test

import (
	"bytes"
	"strings"
	"testing"

	"lotusx"
	"lotusx/internal/dataset"
)

// TestUserJourney walks the complete story the demo paper tells, end to end
// on a generated corpus: a user who knows nothing about the data discovers
// its vocabulary through position-aware completion, builds a twig without
// writing a query language, reads ranked answers with highlights, mistypes
// and is rescued by rewriting, and finally persists the index for next time.
func TestUserJourney(t *testing.T) {
	// Act 0: the corpus.
	var buf bytes.Buffer
	if err := dataset.Generate(dataset.DBLP, 1, 42, &buf); err != nil {
		t.Fatal(err)
	}
	engine, err := lotusx.FromReader("dblp", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if engine.Stats().Nodes < 10000 {
		t.Fatalf("corpus too small: %+v", engine.Stats())
	}

	// Act 1: discovery.  "What is in here?"  The root suggestion reveals
	// the entry kinds without the user knowing the schema.
	s := engine.NewSession()
	cands, err := s.SuggestTags(lotusx.NewRoot, lotusx.Descendant, "", 30)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for _, c := range cands {
		kinds[c.Text] = true
	}
	for _, want := range []string{"article", "inproceedings", "book", "author"} {
		if !kinds[want] {
			t.Fatalf("discovery did not surface %q: %v", want, kinds)
		}
	}

	// Act 2: building.  The user picks inproceedings, grows author and
	// title with one-letter prefixes, completion does the rest.
	root, err := s.Root("inproceedings", lotusx.Descendant)
	if err != nil {
		t.Fatal(err)
	}
	aCands, err := s.SuggestTags(root, lotusx.Child, "a", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(aCands) == 0 || aCands[0].Text != "author" {
		t.Fatalf("a* candidates = %+v", aCands)
	}
	author, err := s.AddNode(root, lotusx.Child, "author")
	if err != nil {
		t.Fatal(err)
	}
	// Value completion: who is in this corpus?
	vals, err := s.SuggestValues(author, "jiaheng", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) == 0 || !strings.HasPrefix(vals[0].Text, "jiaheng") {
		t.Fatalf("value candidates = %+v", vals)
	}
	if err := s.SetPredicate(author, lotusx.Eq, vals[0].Text); err != nil {
		t.Fatal(err)
	}
	title, err := s.AddNode(root, lotusx.Child, "title")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetOutput(title); err != nil {
		t.Fatal(err)
	}

	// Act 3: answers, ranked and explained.
	res, err := s.Run(lotusx.SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers for a frequent author")
	}
	for i := 1; i < len(res.Answers); i++ {
		if res.Answers[i-1].Score < res.Answers[i].Score {
			t.Fatal("answers not score-ordered")
		}
	}
	q, err := s.Query()
	if err != nil {
		t.Fatal(err)
	}
	hs := engine.Highlights(q, res.Answers[0].Scored.Match)
	if len(hs) != 1 || len(hs[0].Spans) == 0 {
		t.Fatalf("highlights = %+v", hs)
	}
	// The XQuery nobody wrote.
	xq, err := s.XQuery()
	if err != nil || !strings.Contains(xq, "for $v0 in doc()//inproceedings") {
		t.Fatalf("xquery = %q (%v)", xq, err)
	}

	// Act 4: the typo.  "inproceedigns" is not a tag; rewriting rescues.
	broken, err := engine.SearchString(`//inproceedigns/title`,
		lotusx.SearchOptions{K: 3, Rewrite: true})
	if err != nil {
		t.Fatal(err)
	}
	if broken.Exact != 0 || len(broken.Answers) == 0 {
		t.Fatalf("rewrite rescue failed: exact=%d answers=%d", broken.Exact, len(broken.Answers))
	}
	if broken.Answers[0].Rewrite == nil ||
		!strings.Contains(broken.Answers[0].Rewrite.Query.String(), "inproceedings") {
		t.Fatalf("unexpected rewrite %+v", broken.Answers[0].Rewrite)
	}

	// Act 5: persistence.  Save full, reopen, same answers.
	var saved bytes.Buffer
	if err := engine.SaveFull(&saved); err != nil {
		t.Fatal(err)
	}
	engine2, err := lotusx.Open(&saved)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := engine2.Search(q, lotusx.SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Answers) != len(res.Answers) {
		t.Fatalf("reloaded answers = %d, want %d", len(res2.Answers), len(res.Answers))
	}
	for i := range res.Answers {
		if res.Answers[i].Node != res2.Answers[i].Node {
			t.Fatal("reloaded ranking differs")
		}
	}
}
